"""Fig. 7 — SNR at the modulator output: correct key vs 100 invalid keys.

Paper shape: correct key > 40 dB; every invalid key < 30 dB; most
invalid keys < 0 dB; a handful above 10 dB, the best of which is the
"deceptive" key whose loop is open with the comparator in buffer mode.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, calibrated, hero_chip
from repro.locking.metrics import key_population_study
from repro.receiver.standards import STANDARDS


def run(n_keys: int = 100, n_fft: int = 8192, seed: int = 7) -> ExperimentResult:
    """Regenerate the Fig. 7 series."""
    chip = hero_chip()
    standard = STANDARDS[0]
    correct = calibrated(chip, standard).config
    study = key_population_study(
        chip,
        correct,
        standard,
        n_keys=n_keys,
        rng=np.random.default_rng(seed),
        n_fft=n_fft,
    )
    result = ExperimentResult(
        experiment_id="fig7",
        title="SNR at BP RF sigma-delta output, correct vs invalid keys",
        columns=["key_index", "snr_db", "kind"],
    )
    result.rows.append(("correct", round(study.correct_snr_db, 2), "correct"))
    for i, snr in enumerate(study.invalid_snrs_db):
        kind = "deceptive" if i == study.deceptive_index else "invalid"
        result.rows.append((i, round(float(snr), 2), kind))
    deceptive = study.deceptive_key
    result.notes.append(
        f"correct key {study.correct_snr_db:.1f} dB (paper: >40 dB)"
    )
    result.notes.append(
        f"best invalid {study.max_invalid_db:.1f} dB at index "
        f"{study.deceptive_index} (paper: ~30 dB at index 7)"
    )
    result.notes.append(
        f"{study.count_above(10.0)}/{n_keys} invalid keys above 10 dB "
        f"(paper: 4/100); {study.count_above(0.0)}/{n_keys} above 0 dB"
    )
    result.notes.append(
        "deceptive key topology: "
        f"fb_en={deceptive.fb_en} comp_clk_en={deceptive.comp_clk_en} "
        f"gmin_en={deceptive.gmin_en} (paper: loop open + comparator as buffer)"
    )
    return result
