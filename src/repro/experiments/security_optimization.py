"""Sec. IV-B.3 — brute-force, optimisation and transfer attacks, run.

Empirically contrasts four ways of searching the 64-bit key space on a
working chip:

* random brute force,
* simulated annealing,
* a genetic algorithm, and
* the transfer attack (leaked key from chip A, hill-climb on chip B) —
  the one avenue the paper concedes is 'meaningful'.

The legitimate calibration's measurement count is the yardstick.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.brute_force import BruteForceAttack
from repro.attacks.optimization import GeneticAttack, SimulatedAnnealingAttack
from repro.attacks.oracle import MeasurementOracle
from repro.attacks.transfer import TransferAttack
from repro.experiments.common import ExperimentResult, calibrated, chip_by_id, hero_chip
from repro.receiver.standards import STANDARDS


def run(budget: int = 150, n_fft: int = 2048, seed: int = 21) -> ExperimentResult:
    """Run all four attack campaigns with a common query budget."""
    chip = hero_chip()
    standard = STANDARDS[0]
    calibration = calibrated(chip, standard)
    spec_snr = standard.snr_spec_db

    result = ExperimentResult(
        experiment_id="opt-attack",
        title="Uninformed attacks vs guided calibration (query budget "
        f"{budget})",
        columns=["attack", "queries", "best_snr_db", "reaches_spec"],
    )

    oracle = MeasurementOracle(chip=chip, standard=standard, n_fft=n_fft)
    brute = BruteForceAttack(oracle, rng=np.random.default_rng(seed)).run(budget)
    result.rows.append(
        ("brute force", oracle.n_queries, round(brute.best_snr_db, 1), brute.success)
    )

    oracle = MeasurementOracle(chip=chip, standard=standard, n_fft=n_fft)
    sa = SimulatedAnnealingAttack(oracle, rng=np.random.default_rng(seed + 1)).run(budget)
    result.rows.append(
        ("simulated annealing", oracle.n_queries, round(sa.best_score, 1), sa.success)
    )

    oracle = MeasurementOracle(chip=chip, standard=standard, n_fft=n_fft)
    ga = GeneticAttack(oracle, rng=np.random.default_rng(seed + 2))
    ga_out = ga.run(max(budget // ga.population_size - 1, 1))
    result.rows.append(
        ("genetic algorithm", oracle.n_queries, round(ga_out.best_score, 1), ga_out.success)
    )

    # Transfer attack: chip B calibrated key leaked, attack hero chip.
    other = chip_by_id(1)
    leaked = calibrated(other, standard).config
    oracle = MeasurementOracle(chip=chip, standard=standard, n_fft=n_fft)
    transfer = TransferAttack(oracle, rng=np.random.default_rng(seed + 3)).run(leaked)
    result.rows.append(
        (
            "transfer (leaked key, re-fab access)",
            oracle.n_queries,
            round(transfer.final_snr_db, 1),
            transfer.success,
        )
    )
    result.rows.append(
        (
            "legitimate calibration (secret algorithm)",
            calibration.n_measurements,
            round(calibration.snr_db, 1),
            calibration.success,
        )
    )
    result.notes.append(
        f"spec: SNR >= {spec_snr} dB on BOTH the modulator and receiver "
        "outputs; uninformed searches either stall or climb onto "
        "deceptive analog-passthrough keys whose high modulator readout "
        "fails the confirmed adjudication, while the secret calibration "
        "converges in a comparable budget — and the leaked-key transfer "
        "attack is the one avenue that works, exactly as the paper "
        "concedes (Sec. IV-B.3)"
    )
    result.notes.append(
        f"transfer attack start SNR {transfer.start_snr_db:.1f} dB with "
        "chip B's key applied verbatim to chip A"
    )
    return result
