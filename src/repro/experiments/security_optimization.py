"""Sec. IV-B.3 — brute-force, optimisation and transfer attacks, run.

Empirically contrasts four ways of searching the 64-bit key space on a
working chip:

* random brute force,
* simulated annealing,
* a genetic algorithm, and
* the transfer attack (leaked key from chip A, hill-climb on chip B) —
  the one avenue the paper concedes is 'meaningful'.

All four run as one campaign through the unified attack API
(:mod:`repro.campaigns`): one cell per attack, one
:class:`~repro.campaigns.report.AttackReport` schema out.  The
adapters reproduce the primitive attacks' RNG streams and oracle
metering exactly, so this table is byte-identical to the pre-campaign
driver.  The legitimate calibration's measurement count is the
yardstick.
"""

from __future__ import annotations

from dataclasses import replace

from repro.campaigns import CampaignCell, ChipSpec, ThreatScenario, run_campaign
from repro.experiments.common import (
    EXPERIMENT_LOT_SEED,
    HERO_CHIP_ID,
    ExperimentResult,
    calibrated,
    hero_chip,
)
from repro.receiver.standards import STANDARDS


def run(budget: int = 150, n_fft: int = 2048, seed: int = 21) -> ExperimentResult:
    """Run all four attack campaigns with a common query budget."""
    chip = hero_chip()
    standard = STANDARDS[0]
    calibration = calibrated(chip, standard)
    spec_snr = standard.snr_spec_db

    result = ExperimentResult(
        experiment_id="opt-attack",
        title="Uninformed attacks vs guided calibration (query budget "
        f"{budget})",
        columns=["attack", "queries", "best_snr_db", "reaches_spec"],
    )

    base = ThreatScenario(
        scheme="fabric",
        chip=ChipSpec(lot_seed=EXPERIMENT_LOT_SEED, chip_id=HERO_CHIP_ID),
        standard_index=standard.index,
        budget=budget,
        n_fft=n_fft,
    )
    cells = [
        CampaignCell("brute-force", replace(base, seed=seed)),
        CampaignCell("annealing", replace(base, seed=seed + 1)),
        CampaignCell("genetic", replace(base, seed=seed + 2)),
        CampaignCell(
            "transfer",
            replace(base, seed=seed + 3),
            attack_params=(("donor_chip_id", 1),),
        ),
    ]
    brute, sa, ga, transfer = run_campaign(cells).reports

    result.rows.append(
        ("brute force", brute.n_queries, round(brute.best_metric_db, 1), brute.success)
    )
    result.rows.append(
        ("simulated annealing", sa.n_queries, round(sa.best_metric_db, 1), sa.success)
    )
    result.rows.append(
        (
            "genetic algorithm",
            ga.n_queries,
            round(ga.best_metric_db, 1),
            ga.success,
        )
    )
    result.rows.append(
        (
            "transfer (leaked key, re-fab access)",
            transfer.n_queries,
            round(transfer.best_metric_db, 1),
            transfer.success,
        )
    )
    result.rows.append(
        (
            "legitimate calibration (secret algorithm)",
            calibration.n_measurements,
            round(calibration.snr_db, 1),
            calibration.success,
        )
    )
    result.notes.append(
        f"spec: SNR >= {spec_snr} dB on BOTH the modulator and receiver "
        "outputs; uninformed searches either stall or climb onto "
        "deceptive analog-passthrough keys whose high modulator readout "
        "fails the confirmed adjudication, while the secret calibration "
        "converges in a comparable budget — and the leaked-key transfer "
        "attack is the one avenue that works, exactly as the paper "
        "concedes (Sec. IV-B.3)"
    )
    result.notes.append(
        f"transfer attack start SNR {transfer.extra('start_snr_db'):.1f} dB with "
        "chip B's key applied verbatim to chip A"
    )
    return result
