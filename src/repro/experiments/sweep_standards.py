"""Sec. VI-A (closing) — other centre frequencies.

"The same experiment was repeated for other center frequencies and
qualitatively the results were identical."  This sweep calibrates the
hero chip for several standards across 1.5-3.0 GHz and repeats a small
invalid-key study for each.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    ExperimentResult,
    calibrated,
    hero_chip,
    measure_keys,
)
from repro.locking.metrics import key_population_study
from repro.locking.specs import PerformanceSpec
from repro.receiver.standards import STANDARDS


def run(
    standard_indices: tuple[int, ...] = (0, 2, 5, 7),
    n_keys: int = 20,
    n_fft: int = 2048,
    seed: int = 7,
) -> ExperimentResult:
    """Lock efficiency across standards (centre frequencies).

    Deceptive (analog-passthrough) invalid keys can out-read the correct
    key on the raw modulator-output SNR, so any invalid key whose
    modulator readout crosses the spec is adjudicated at the receiver
    output as well — ``confirmed_unlocks`` counts the keys that survive
    (the lock holds when the count is 0).
    """
    chip = hero_chip()
    result = ExperimentResult(
        experiment_id="sweep-std",
        title="Lock efficiency across standards (1.5-3.0 GHz)",
        columns=[
            "standard",
            "f_center_ghz",
            "correct_snr_db",
            "max_invalid_db",
            "invalid_above_10db",
            "confirmed_unlocks",
        ],
    )
    for idx in standard_indices:
        standard = STANDARDS[idx]
        calibration = calibrated(chip, standard)
        study = key_population_study(
            chip,
            calibration.config,
            standard,
            n_keys=n_keys,
            rng=np.random.default_rng(seed + idx),
            n_fft=n_fft,
        )
        spec = PerformanceSpec.for_standard(standard)
        # Receiver-output adjudication of the suspects, as one batch.
        suspects = [
            (key, snr)
            for key, snr in zip(study.keys, study.invalid_snrs_db)
            if snr >= spec.snr_min_db
        ]
        rx_snrs = measure_keys(
            chip,
            [key for key, _ in suspects],
            standard,
            at_receiver=True,
            n_baseband=256,
        )
        confirmed = sum(
            1
            for (_, snr), snr_rx in zip(suspects, rx_snrs)
            if spec.meets(snr_db=float(snr), snr_rx_db=float(snr_rx))
        )
        result.rows.append(
            (
                standard.name,
                round(standard.f_center / 1e9, 3),
                round(study.correct_snr_db, 1),
                round(study.max_invalid_db, 1),
                study.count_above(10.0),
                confirmed,
            )
        )
    result.notes.append(
        "paper: results for other centre frequencies are qualitatively "
        "identical — no invalid key survives the full (modulator + "
        "receiver output) adjudication at any standard"
    )
    return result
