"""Fig. 10 — output PSD: noise shaping present vs absent.

Paper shape: the correct key's PSD shows the band-pass noise-shaping
notch at the centre frequency; the deceptive key's PSD shows none.
The notch is quantified as the PSD contrast between the in-band region
and the out-of-band shoulders.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, calibrated, hero_chip
from repro.experiments.fig08_transient import deceptive_key_from_population
from repro.receiver.performance import modulator_output_spectrum, signal_band
from repro.receiver.standards import STANDARDS


def shaping_contrast_db(spectrum, standard, osr: int) -> float:
    """Out-of-band-shoulder to in-band noise density ratio, dB.

    Positive values mean quantisation noise is pushed *out* of the band
    (noise shaping); ~0 means no shaping at all.
    """
    f_lo, f_hi = signal_band(standard, osr)
    width = f_hi - f_lo
    idx_in = spectrum.band_indices(f_lo, f_hi)
    noise_in = float(np.median(spectrum.power[idx_in]))
    shoulders = np.concatenate(
        [
            spectrum.band_indices(f_lo - 6 * width, f_lo - 2 * width),
            spectrum.band_indices(f_hi + 2 * width, f_hi + 6 * width),
        ]
    )
    noise_out = float(np.median(spectrum.power[shoulders]))
    return 10.0 * np.log10(max(noise_out, 1e-300) / max(noise_in, 1e-300))


def run(n_fft: int = 8192, seed: int = 7) -> ExperimentResult:
    """Regenerate the Fig. 10 comparison."""
    chip = hero_chip()
    standard = STANDARDS[0]
    osr = chip.design.osr
    correct = calibrated(chip, standard).config
    deceptive = deceptive_key_from_population(seed=seed)

    spec_ok = modulator_output_spectrum(chip, correct, standard, n_fft=n_fft)
    spec_bad = modulator_output_spectrum(chip, deceptive, standard, n_fft=n_fft)
    contrast_ok = shaping_contrast_db(spec_ok, standard, osr)
    contrast_bad = shaping_contrast_db(spec_bad, standard, osr)

    result = ExperimentResult(
        experiment_id="fig10",
        title="PSD at modulator output: noise shaping vs none",
        columns=["key", "shaping_contrast_db", "interpretation"],
    )
    result.rows.append(
        ("correct", round(contrast_ok, 2), "noise pushed out of band")
    )
    result.rows.append(
        ("deceptive", round(contrast_bad, 2), "no noise shaping")
    )
    result.notes.append(
        "paper: 'for the invalid key there is no noise shaping, which is "
        "the main characteristic of the BP RF sigma-delta modulator'"
    )
    result.notes.append(
        f"contrast gap {contrast_ok - contrast_bad:.1f} dB in favour of "
        "the correct key"
    )
    return result
