"""Experiment drivers regenerating every figure/analysis of the paper.

One module per artefact:

== ========================================== ==============================
id paper artefact                              module
== ========================================== ==============================
fig7        SNR at modulator out, 100 keys     fig07_invalid_keys
fig8        transient bitstream vs analog      fig08_transient
fig9        SNR at receiver out, same keys     fig09_receiver_snr
fig10       PSD, noise shaping vs none         fig10_psd
fig11       SNR vs input power, 3 segments     fig11_dynamic_range
fig12       two-tone SFDR                      fig12_sfdr
tab-attack  Sec. VI-B.1 cost accounting        table_attack_cost
tab-ovr     Secs. II/IV-A scheme comparison    table_baselines
tab-keys    Sec. VI-B key-space structure      table_keyspace
sweep-std   other centre frequencies           sweep_standards
sat-na      Sec. IV-B.1 SAT applicability      security_sat
opt-attack  Sec. IV-B.3 optimisation attacks   security_optimization
== ========================================== ==============================
"""

from repro.experiments.common import (
    EXPERIMENT_LOT_SEED,
    ExperimentResult,
    calibrated,
    chip_by_id,
    clear_caches,
    hero_chip,
    measure_keys,
)

__all__ = [
    "EXPERIMENT_LOT_SEED",
    "ExperimentResult",
    "calibrated",
    "chip_by_id",
    "clear_caches",
    "hero_chip",
    "measure_keys",
]
