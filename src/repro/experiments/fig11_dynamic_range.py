"""Fig. 11 — SNR versus input power with per-segment VGLNA gains.

Paper shape: the input range is covered by three overlapping segments
([-85:-45], [-60:-20], [-40:0] dBm); within each, the calibrated key's
SNR rises with input power (then compresses), while the deceptive key
behaves "very differently" — dead across most of the range.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, calibrated, hero_chip
from repro.experiments.fig08_transient import deceptive_key_from_population
from repro.receiver.performance import dynamic_range_db, dynamic_range_sweep, peak_snr
from repro.receiver.standards import STANDARDS


def run(power_step_dbm: float = 5.0, n_fft: int = 4096, seed: int = 7) -> ExperimentResult:
    """Regenerate the Fig. 11 sweep."""
    chip = hero_chip()
    standard = STANDARDS[0]
    calibration = calibrated(chip, standard)
    correct = calibration.config
    segments = calibration.segment_gains
    deceptive = deceptive_key_from_population(seed=seed)

    pts_ok = dynamic_range_sweep(
        chip, correct, standard, segments, power_step_dbm=power_step_dbm, n_fft=n_fft
    )
    pts_bad = dynamic_range_sweep(
        chip,
        deceptive,
        standard,
        segments,
        power_step_dbm=power_step_dbm,
        n_fft=n_fft,
        use_segment_gain=False,
    )

    result = ExperimentResult(
        experiment_id="fig11",
        title="SNR vs input power, three VGLNA gain segments",
        columns=["key", "segment", "lna_gain", "power_dbm", "snr_db"],
    )
    for label, pts in (("correct", pts_ok), ("deceptive", pts_bad)):
        for p in pts:
            result.rows.append(
                (label, p.segment_index, p.lna_gain, p.power_dbm, round(p.snr_db, 2))
            )
    dr_ok = dynamic_range_db(pts_ok, snr_min_db=10.0)
    dr_bad = dynamic_range_db(pts_bad, snr_min_db=10.0)
    result.notes.append(
        f"correct key: peak SNR {peak_snr(pts_ok):.1f} dB, usable range "
        f"{dr_ok:.0f} dB; deceptive key: peak {peak_snr(pts_bad):.1f} dB, "
        f"usable range {dr_bad:.0f} dB"
    )
    result.notes.append(
        "paper: 'the behavior of the locked circuit across the input "
        "range is very different as compared to the unlocked circuit'"
    )
    return result
