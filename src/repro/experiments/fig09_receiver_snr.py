"""Fig. 9 — SNR at the receiver output for the same key population.

Paper shape: the correct key's SNR is unchanged versus Fig. 7; every
invalid key falls below 10 dB; the deceptive key's 30 dB collapses once
its analog waveform passes through the digital section.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, calibrated, hero_chip
from repro.locking.metrics import key_population_study
from repro.receiver.standards import STANDARDS


def run(n_keys: int = 100, n_baseband: int = 512, seed: int = 7) -> ExperimentResult:
    """Regenerate the Fig. 9 series (same key draw as Fig. 7)."""
    chip = hero_chip()
    standard = STANDARDS[0]
    correct = calibrated(chip, standard).config
    study_rx = key_population_study(
        chip,
        correct,
        standard,
        n_keys=n_keys,
        rng=np.random.default_rng(seed),
        at_receiver=True,
        n_baseband=n_baseband,
    )
    result = ExperimentResult(
        experiment_id="fig9",
        title="SNR at receiver output, correct vs invalid keys",
        columns=["key_index", "snr_db", "kind"],
    )
    result.rows.append(("correct", round(study_rx.correct_snr_db, 2), "correct"))
    for i, snr in enumerate(study_rx.invalid_snrs_db):
        result.rows.append((i, round(float(snr), 2), "invalid"))
    result.notes.append(
        f"correct key {study_rx.correct_snr_db:.1f} dB "
        "(paper: unchanged from Fig. 7)"
    )
    result.notes.append(
        f"best invalid {study_rx.max_invalid_db:.1f} dB; "
        f"{study_rx.count_above(10.0)}/{n_keys} above 10 dB "
        "(paper: all invalid keys < 10 dB)"
    )
    return result
