"""Fig. 8 — transient modulator output: correct key vs deceptive key.

Paper shape: the correct key yields an oversampled +/-1 bitstream; the
deceptive key (loop open, comparator as buffer) yields an analog
waveform with no analog-to-digital conversion.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, calibrated, hero_chip
from repro.experiments.fig07_invalid_keys import run as run_fig7
from repro.receiver.performance import DEFAULT_POWER_DBM, stimulus_frequency
from repro.receiver.standards import STANDARDS
from repro.receiver.stimulus import ToneStimulus


def deceptive_key_from_population(n_keys: int = 100, seed: int = 7):
    """The best invalid key of the Fig. 7 population (its 'index 7')."""
    from repro.locking.metrics import key_population_study

    chip = hero_chip()
    standard = STANDARDS[0]
    correct = calibrated(chip, standard).config
    study = key_population_study(
        chip,
        correct,
        standard,
        n_keys=n_keys,
        rng=np.random.default_rng(seed),
        n_fft=2048,
    )
    return study.deceptive_key


def run(n_samples: int = 512, seed: int = 7) -> ExperimentResult:
    """Regenerate the Fig. 8 waveforms (summarised as statistics)."""
    chip = hero_chip()
    standard = STANDARDS[0]
    correct = calibrated(chip, standard).config
    deceptive = deceptive_key_from_population(seed=seed)

    f_sig = stimulus_frequency(standard, chip.design.osr, 8192)
    stim = ToneStimulus.single(f_sig, DEFAULT_POWER_DBM)
    res_ok = chip.simulate_modulator(correct, stim, standard.fs, n_samples=n_samples)
    res_bad = chip.simulate_modulator(deceptive, stim, standard.fs, n_samples=n_samples)

    def describe(res, label):
        levels = np.unique(np.round(res.output, 6)).size
        return (
            label,
            "bitstream" if res.is_bitstream else "analog",
            levels,
            round(float(np.max(np.abs(res.output))), 3),
            round(float(np.std(res.output)), 3),
        )

    result = ExperimentResult(
        experiment_id="fig8",
        title="Transient modulator output: correct vs deceptive key",
        columns=["key", "output_type", "distinct_levels", "peak_v", "rms_v"],
    )
    result.rows.append(describe(res_ok, "correct"))
    result.rows.append(describe(res_bad, "deceptive"))
    result.notes.append(
        "paper: correct output is an oversampled bitstream, deceptive "
        "output is an analog waveform with no A/D conversion"
    )
    result.notes.append(
        f"correct key has {int(np.unique(res_ok.output).size)} output levels "
        f"(two rails); deceptive key output is continuous-valued"
    )
    return result
