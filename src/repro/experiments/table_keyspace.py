"""Sec. VI-B — key-space structure: unique sub-keys and avalanche.

Two analyses back the paper's "it is very unlikely that many key-bit
combinations could result in satisfactory performance":

* binary-weighted capacitor arrays give (nearly) unique sub-keys for a
  target capacitance — verified constructively, and
* the avalanche study: how fast SNR collapses with Hamming distance
  from the correct key.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, calibrated, hero_chip
from repro.locking.metrics import avalanche_study, capacitor_subkey_uniqueness
from repro.receiver.standards import STANDARDS


def run(
    distances: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    trials_per_distance: int = 8,
    n_fft: int = 2048,
) -> ExperimentResult:
    """Build the key-space structure table."""
    chip = hero_chip()
    standard = STANDARDS[0]
    calibration = calibrated(chip, standard)
    correct = calibration.config

    result = ExperimentResult(
        experiment_id="tab-keyspace",
        title="Key-space structure: sub-key uniqueness and avalanche",
        columns=["quantity", "value"],
    )
    target_c = chip.blocks.tank.capacitance(correct.cc_coarse, correct.cf_fine)
    n_subkeys = capacitor_subkey_uniqueness(chip, target_c)
    result.rows.append(
        ("cap-array sub-keys within 0.5 fine LSB of target", n_subkeys)
    )
    points = avalanche_study(
        chip,
        correct,
        standard,
        distances=distances,
        trials_per_distance=trials_per_distance,
        n_fft=n_fft,
    )
    correct_snr = calibration.snr_db
    for p in points:
        result.rows.append(
            (
                f"mean SNR at Hamming distance {p.hamming_distance}",
                f"{p.mean_snr_db:.1f} dB (min {p.min_snr_db:.1f}, max {p.max_snr_db:.1f})",
            )
        )
    result.notes.append(
        f"correct-key SNR {correct_snr:.1f} dB; single-bit flips already "
        "cost several dB on average (a wrong enable is fatal, a fine-cap "
        "LSB benign), and by distance 8 the mean collapses below 10 dB"
    )
    result.notes.append(
        "paper: 'capacitor arrays are binary-weighted, thus for a desired "
        "capacitor value there is a unique sub-key'"
    )
    return result
