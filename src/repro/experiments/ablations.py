"""Ablations of the reproduction's own design choices.

DESIGN.md commits to several modelling decisions; these ablations show
each one is load-bearing (or convergent), so reviewers can see the
headline results are not artefacts of a particular knob:

* ``substeps`` — the matrix-exponential integrator must be converged:
  the correct-key SNR should be stable from 4 substeps per clock up.
* ``logic_threshold`` — the Fig. 9 collapse mechanism: at threshold 0
  a deceptive key survives the digital section; at the realistic CMOS
  threshold it dies, while the correct key is indifferent.
* ``comp_hysteresis`` — suppresses the weak-tone slicing tail of the
  invalid-key population without touching the correct key.
* ``osr`` — the in-band width scales the SNR as every oversampling
  converter's should (~9 dB per octave for a 2nd-order band-pass loop
  plus thermal flattening).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.experiments.common import ExperimentResult, calibrated, hero_chip
from repro.experiments.fig08_transient import deceptive_key_from_population
from repro.locking.metrics import key_population_study
from repro.receiver.chain import DigitalChain
from repro.receiver.design import FrontEndDesign, ReceiverDesign
from repro.receiver.performance import (
    measure_modulator_snr,
    signal_band,
    stimulus_frequency,
)
from repro.receiver.receiver import Chip
from repro.receiver.standards import STANDARDS
from repro.receiver.stimulus import ToneStimulus
from repro.dsp.metrics import band_snr
from repro.dsp.spectrum import periodogram


def substeps_convergence(n_fft: int = 4096, seed: int = 1) -> ExperimentResult:
    """Correct-key SNR versus integrator substeps per clock."""
    chip = hero_chip()
    standard = STANDARDS[0]
    key = calibrated(chip, standard).config
    result = ExperimentResult(
        experiment_id="abl-substeps",
        title="Integrator convergence: SNR vs substeps per clock",
        columns=["substeps", "snr_db"],
    )
    values = {}
    for substeps in (2, 3, 4, 6, 8):
        m = measure_modulator_snr(
            chip, key, standard, n_fft=n_fft, seed=seed, substeps=substeps
        )
        values[substeps] = m.snr_db
        result.rows.append((substeps, round(m.snr_db, 2)))
    spread = max(values[s] for s in (4, 6, 8)) - min(values[s] for s in (4, 6, 8))
    result.notes.append(
        f"SNR spread across substeps 4..8: {spread:.1f} dB — the default "
        "(4) sits on the converged plateau"
    )
    return result


def logic_threshold_ablation(n_baseband: int = 256, seed: int = 1) -> ExperimentResult:
    """Receiver-output SNR vs digital logic threshold, both key types."""
    chip = hero_chip()
    standard = STANDARDS[0]
    correct = calibrated(chip, standard).config
    deceptive = deceptive_key_from_population(seed=7)
    osr = chip.design.osr
    n_mod = n_baseband * osr
    f_sig = stimulus_frequency(standard, osr, n_mod)
    stim = ToneStimulus.single(f_sig, -25.0)
    half = standard.fs / (4.0 * osr)

    result = ExperimentResult(
        experiment_id="abl-threshold",
        title="Fig. 9 mechanism: receiver SNR vs logic threshold",
        columns=["logic_threshold_v", "correct_snr_db", "deceptive_snr_db"],
    )
    for threshold in (0.0, 0.2, 0.4, 0.6):
        row = [threshold]
        for key in (correct, deceptive):
            mod = chip.simulate_modulator(
                key, stim, standard.fs, n_samples=n_mod, seed=seed
            )
            chain = DigitalChain(osr=osr, logic_threshold=threshold)
            rx = chain.process(mod.output, standard.fs)
            spec = periodogram(rx.baseband, rx.fs_out)
            m = band_snr(spec, f_sig - standard.fs / 4.0, -half, half)
            row.append(round(m.snr_db, 2))
        result.rows.append(tuple(row))
    result.notes.append(
        "the correct key is indifferent to the threshold (full-swing "
        "bitstream); the deceptive key survives a 0 V slicer and dies at "
        "the realistic CMOS threshold — the Fig. 9 collapse is a physical "
        "property of driving logic with an analog waveform, not a tuned "
        "artefact"
    )
    return result


def hysteresis_ablation(n_keys: int = 20, n_fft: int = 2048, seed: int = 7) -> ExperimentResult:
    """Invalid-key population tail vs comparator hysteresis."""
    standard = STANDARDS[0]
    base_chip = hero_chip()
    key = calibrated(base_chip, standard).config
    result = ExperimentResult(
        experiment_id="abl-hysteresis",
        title="Invalid-key tail vs comparator hysteresis",
        columns=["hysteresis_mv", "correct_snr_db", "invalid_above_10db"],
    )
    for hyst in (1e-3, 15e-3):
        front_end = dataclasses.replace(
            base_chip.design.front_end, comp_hysteresis=hyst
        )
        design = dataclasses.replace(base_chip.design, front_end=front_end)
        chip = Chip(design=design, variations=base_chip.variations)
        study = key_population_study(
            chip,
            key,
            standard,
            n_keys=n_keys,
            rng=np.random.default_rng(seed),
            n_fft=n_fft,
        )
        result.rows.append(
            (
                round(hyst * 1e3, 1),
                round(study.correct_snr_db, 1),
                study.count_above(10.0),
            )
        )
    result.notes.append(
        "hysteresis latches the comparator on the weak tank tones of "
        "open-loop invalid keys (fewer keys above 10 dB) at a ~2 dB cost "
        "to the correct key"
    )
    return result


def osr_scaling(n_fft: int = 8192, seed: int = 1) -> ExperimentResult:
    """Correct-key SNR versus measurement OSR (in-band width)."""
    chip = hero_chip()
    standard = STANDARDS[0]
    key = calibrated(chip, standard).config
    n = n_fft
    f_sig = stimulus_frequency(standard, 64, n)
    stim = ToneStimulus.single(f_sig, -25.0)
    mod = chip.simulate_modulator(key, stim, standard.fs, n_samples=n, seed=seed)
    spec = periodogram(mod.output, standard.fs)
    result = ExperimentResult(
        experiment_id="abl-osr",
        title="SNR vs oversampling ratio (band width)",
        columns=["osr", "band_mhz", "snr_db"],
    )
    for osr in (16, 32, 64, 128):
        half = standard.fs / (4.0 * osr)
        m = band_snr(spec, f_sig, standard.f_center - half, standard.f_center + half)
        result.rows.append(
            (osr, round(2 * half / 1e6, 1), round(m.snr_db, 2))
        )
    snrs = [row[2] for row in result.rows]
    result.notes.append(
        f"SNR rises monotonically with OSR ({snrs[0]:.0f} -> {snrs[-1]:.0f} dB); "
        "the shaped quantisation noise gives more than the 3 dB/octave a "
        "flat-noise converter would"
    )
    return result


def run(quick: bool = False) -> list[ExperimentResult]:
    """Run every ablation; returns the result list."""
    if quick:
        return [
            substeps_convergence(n_fft=2048),
            logic_threshold_ablation(n_baseband=128),
            hysteresis_ablation(n_keys=10),
            osr_scaling(n_fft=4096),
        ]
    return [
        substeps_convergence(),
        logic_threshold_ablation(),
        hysteresis_ablation(),
        osr_scaling(),
    ]
