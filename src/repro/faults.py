"""Deterministic fault injection: the chaos the self-healing layer is
proved against.

The service layer claims crash-transparency — a worker killed or hung
mid-task, a torn store entry, a dropped protocol frame must all leave
reports byte-identical to a fault-free run (``tests/test_faults.py``
holds exactly that differentially).  Claims like that are only as good
as the faults they were tested under, so this module gives every
recovery path a *named, deterministic* trigger:

============================  =============================================
injection point               fires inside
============================  =============================================
``task.crash_before_report``  a worker, after ``task.run()`` succeeded but
                              before the result reaches the parent
                              (``os._exit`` — simulates SIGKILL/OOM)
``task.crash_after_charge``   :meth:`~repro.service.tenants.TenantMeter.
                              charge_batch`, after the charge landed — the
                              one stateful mid-task hazard the reservation
                              journal closes
``task.hang``                 a worker, instead of running its task
                              (``SIGSTOP`` to itself: every thread freezes,
                              heartbeats stop, the watchdog must reclaim)
``task.stall_heartbeat``      a worker, before running its task: the
                              heartbeat thread stops beating and the task is
                              delayed past the watchdog, but the worker stays
                              alive and *reports late* — the adversarial
                              schedule for the supervisor's kill-before-drain
                              ordering (a stale-looking worker's late result
                              must settle exactly once, never requeue)
``worker.torn_conn``          a worker, after reporting a result: its end of
                              the duplex pipe closes while the process stays
                              alive with a beating heartbeat — the parent's
                              next dispatch to it fails, and the slot must be
                              marked broken or the sweep never reaps it
                              (the ``n_workers=1`` livelock)
``store.torn_entry``          :meth:`~repro.engine.store.CalibrationStore.
                              put` — the entry lands truncated, as if the
                              writer died mid-write before the rename
``store.torn_audit``          the store's ``events.log`` append — the line
                              lands without its trailing newline
``journal.torn_append``       :meth:`~repro.service.journal.JobJournal.
                              put_cell` — the cell entry lands truncated
``frame.drop``                :func:`~repro.service.protocol.send_frame` —
                              nothing is sent and the connection is torn
``frame.truncate``            :func:`~repro.service.protocol.send_frame` —
                              half the frame is sent, then the connection
                              is torn
============================  =============================================

Determinism: each point keeps a per-process hit counter, and a
:class:`FaultRule` decides *by counter value* whether a hit fires —
``every=N`` (every Nth hit), ``at=3/7`` (exactly those hits), ``p=0.2``
(a pseudo-random subset drawn from ``hash(seed, point, hit)``, so the
same seed always selects the same hits), optionally capped by
``times=K``.  Given the same plan and the same execution schedule, the
same faults fire.

Cost when disabled: every instrumented site guards on the module-level
:data:`ENABLED` flag — one attribute load and a falsy test, nothing
else.  ``benchmarks/test_bench_daemon.py`` asserts the flag is off and
times the full dispatch path under it.

Activation: programmatic (:func:`install`) or the ``REPRO_FAULTS``
environment variable, read at import time so forked *and* spawned
workers inherit the plan::

    REPRO_FAULTS="task.crash_before_report:every=5;frame.truncate:at=2"
    REPRO_FAULTS="task.hang:p=0.1,seed=7"

Spec grammar: ``;``-separated clauses, each ``point:key=value[,...]``
with keys ``every`` / ``at`` (``/``-separated hit numbers, 1-based) /
``p`` / ``times`` / ``seed`` (plan-wide, any clause may set it).
"""

from __future__ import annotations

import hashlib
import os
import signal
import time

#: Environment variable carrying a fault-plan spec (see module docs).
FAULTS_ENV = "REPRO_FAULTS"

#: Every injection point a plan may name (unknown points are rejected
#: up front so a typo cannot silently disarm a chaos run).
INJECTION_POINTS = (
    "task.crash_before_report",
    "task.crash_after_charge",
    "task.hang",
    "task.stall_heartbeat",
    "worker.torn_conn",
    "store.torn_entry",
    "store.torn_audit",
    "journal.torn_append",
    "frame.drop",
    "frame.truncate",
)

#: Module-level arming flag: the ONLY thing instrumented hot paths test
#: when no plan is installed.  Kept in sync with :data:`_PLAN` by
#: :func:`install`.
ENABLED = False

_PLAN = None


class FaultInjected(ConnectionResetError):
    """Raised by frame-level injections to tear the connection the way
    a real network failure would (``ConnectionResetError`` so existing
    socket error handling takes over)."""


class FaultRule:
    """When one injection point fires, by per-process hit counter.

    Args:
        point: One of :data:`INJECTION_POINTS`.
        every: Fire on hits ``N, 2N, 3N, ...`` (1-based).
        at: Fire on exactly these hit numbers (1-based).
        p: Fire on a deterministic pseudo-random fraction of hits,
            drawn from the plan seed (see :meth:`FaultPlan.should_fire`).
        times: Stop firing after this many firings.
    """

    def __init__(self, point: str, every: int | None = None,
                 at=(), p: float | None = None, times: int | None = None):
        if point not in INJECTION_POINTS:
            raise ValueError(
                f"unknown injection point {point!r}; "
                f"known: {', '.join(INJECTION_POINTS)}"
            )
        if every is not None and every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        if p is not None and not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        if every is None and not at and p is None:
            raise ValueError(
                f"rule for {point!r} needs every=, at= or p= to ever fire"
            )
        self.point = point
        self.every = every
        self.at = frozenset(at)
        self.p = p
        self.times = times

    def matches(self, hit: int, seed: int) -> bool:
        """Does hit number ``hit`` (1-based) fire, given the plan seed?"""
        if self.every is not None and hit % self.every == 0:
            return True
        if hit in self.at:
            return True
        if self.p is not None:
            digest = hashlib.sha256(
                f"{seed}:{self.point}:{hit}".encode()
            ).digest()
            draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
            return draw < self.p
        return False


class FaultPlan:
    """A set of :class:`FaultRule` records plus per-point hit counters.

    Counters are per-process (workers start their own on fork/spawn and
    restart them on respawn), which is what makes a standing chaos plan
    like ``task.crash_before_report:every=5`` survivable: the respawned
    worker runs its retried task 4 clean tasks away from its next crash.
    """

    def __init__(self, rules=(), seed: int = 0):
        self.rules: dict[str, FaultRule] = {}
        for rule in rules:
            if rule.point in self.rules:
                raise ValueError(f"duplicate rule for {rule.point!r}")
            self.rules[rule.point] = rule
        self.seed = seed
        self._hits: dict[str, int] = {}
        self._fired: dict[str, int] = {}

    def should_fire(self, point: str) -> bool:
        """Advance ``point``'s hit counter and decide this hit."""
        rule = self.rules.get(point)
        if rule is None:
            return False
        hit = self._hits.get(point, 0) + 1
        self._hits[point] = hit
        if rule.times is not None and self._fired.get(point, 0) >= rule.times:
            return False
        if not rule.matches(hit, self.seed):
            return False
        self._fired[point] = self._fired.get(point, 0) + 1
        return True

    def spec(self) -> str:
        """A ``REPRO_FAULTS`` spec string reproducing this plan."""
        clauses = []
        for rule in self.rules.values():
            keys = []
            if rule.every is not None:
                keys.append(f"every={rule.every}")
            if rule.at:
                keys.append("at=" + "/".join(str(n) for n in sorted(rule.at)))
            if rule.p is not None:
                keys.append(f"p={rule.p}")
            if rule.times is not None:
                keys.append(f"times={rule.times}")
            if self.seed:
                keys.append(f"seed={self.seed}")
            clauses.append(f"{rule.point}:{','.join(keys)}")
        return ";".join(clauses)


def parse_spec(text: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec (module docstring grammar)."""
    rules = []
    seed = 0
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        point, sep, rest = clause.partition(":")
        if not sep:
            raise ValueError(
                f"malformed fault clause {clause!r}; expected "
                f"point:key=value[,key=value...]"
            )
        kwargs: dict = {}
        for pair in rest.split(","):
            key, sep, value = pair.partition("=")
            key = key.strip()
            if not sep:
                raise ValueError(
                    f"malformed fault option {pair!r} in {clause!r}"
                )
            try:
                if key == "every" or key == "times":
                    kwargs[key] = int(value)
                elif key == "at":
                    kwargs["at"] = tuple(int(n) for n in value.split("/"))
                elif key == "p":
                    kwargs["p"] = float(value)
                elif key == "seed":
                    seed = int(value)
                else:
                    raise ValueError(f"unknown fault option {key!r}")
            except ValueError as exc:
                raise ValueError(
                    f"malformed fault clause {clause!r}: {exc}"
                ) from None
        rules.append(FaultRule(point.strip(), **kwargs))
    return FaultPlan(rules, seed=seed)


def install(plan: FaultPlan | None) -> None:
    """Install (or, with None, disarm) the process-wide fault plan."""
    global _PLAN, ENABLED
    _PLAN = plan
    ENABLED = plan is not None


def active() -> FaultPlan | None:
    """The installed plan, or None."""
    return _PLAN


def fire(point: str) -> bool:
    """Advance ``point``'s counter on the installed plan; True when the
    fault should be injected now.  Callers guard with :data:`ENABLED`
    first, so this is never reached on the fault-free hot path."""
    plan = _PLAN
    return plan is not None and plan.should_fire(point)


def crash() -> None:
    """Die the way a SIGKILL/OOM kill dies: no cleanup, no unwinding,
    no result message — ``os._exit`` with a recognisable code."""
    os._exit(86)


def hang() -> None:
    """Freeze the whole process the way a wedged syscall or a livelock
    does: ``SIGSTOP`` stops every thread, including the heartbeat
    thread, so only the parent's watchdog can reclaim the worker."""
    os.kill(os.getpid(), signal.SIGSTOP)
    # If anything ever SIGCONTs us instead of killing us, stay hung —
    # a resumed "hung" worker must not surprise the scheduler with a
    # result it already retried elsewhere.
    while True:  # pragma: no cover - only reached under SIGCONT
        time.sleep(3600)


def tear_connection(conn) -> None:
    """Close the worker's end of its duplex pipe but keep the process
    alive — heartbeat still beating, no exit code.  From the parent's
    side the worker looks healthy until the next dispatch to it fails,
    which is exactly the shape of the broken-pipe livelock the
    supervision sweep must break by marking the slot broken."""
    try:
        conn.close()
    except OSError:  # pragma: no cover - close cannot plausibly fail
        pass
    while True:
        time.sleep(3600)


def torn(data: bytes) -> bytes:
    """The prefix a crash mid-write would have left behind (at least
    one byte so the file exists, never the whole payload)."""
    return data[: max(1, len(data) // 2)]


def _install_from_env() -> None:
    spec = os.environ.get(FAULTS_ENV)
    if spec:
        install(parse_spec(spec))


_install_from_env()
