"""Calibration tests: metering, binary searches, the 14-step procedure."""

import numpy as np
import pytest

from repro.calibration import (
    CalibrationFailed,
    Calibrator,
    NOMINAL_DELAY_CODE,
    coordinate_descent,
    is_oscillating,
    metering,
    oscillation_frequency,
    segment_gain_plan,
    vglna_gain_plan,
)
from repro.dsp import sine
from repro.receiver import Chip, ConfigWord


class TestMetering:
    def test_frequency_meter_accuracy(self, rng):
        fs = 12e9
        f = 2.7182e9
        x = sine(4096, fs, f, 0.3) + rng.normal(0, 1e-3, 4096)
        measured = oscillation_frequency(x, fs)
        assert measured == pytest.approx(f, rel=2e-4)

    def test_frequency_meter_rejects_noise(self, rng):
        assert oscillation_frequency(rng.normal(0, 0.1, 4096), 1e9) is None

    def test_frequency_meter_rejects_silence(self):
        assert oscillation_frequency(np.zeros(2048), 1e9) is None

    def test_is_oscillating_detects_sustained(self):
        x = sine(2048, 1e9, 1e8, 0.3)
        assert is_oscillating(x, 1e9)

    def test_is_oscillating_rejects_decay(self):
        t = np.arange(2048)
        x = 0.3 * np.exp(-t / 150) * np.sin(2 * np.pi * 0.1 * t)
        assert not is_oscillating(x, 1e9)

    def test_is_oscillating_rejects_small(self, rng):
        assert not is_oscillating(rng.normal(0, 0.015, 2048), 1e9)


class TestBatchedFrequencyMeter:
    """oscillation_frequency_batch == the scalar meter, record by record.

    The fleet calibrator's lockstep rounds decode every active die's
    frequency probe through one batched call; the batch must reproduce
    the scalar meter bit for bit — gates (silence, noise) included —
    over mixed record lengths and mixed clock rates.
    """

    def _records(self, rng):
        records, rates = [], []
        for i in range(6):
            n = 4096 if i % 2 == 0 else 2048
            fs = 1e9 * (i + 1)
            if i == 2:
                x = np.zeros(n)  # silence -> None via the RMS gate
            elif i == 4:
                x = rng.normal(0, 0.1, n)  # noise -> concentration gate
            else:
                x = sine(n, fs, fs / 7.3, 0.3) + rng.normal(0, 1e-3, n)
            records.append(x)
            rates.append(fs)
        return records, rates

    def test_bit_identical_to_scalar_meter(self, rng):
        records, rates = self._records(rng)
        batch = metering.oscillation_frequency_batch(records, rates)
        for record, fs, got in zip(records, rates, batch):
            expected = metering.oscillation_frequency(record, fs)
            assert got == expected or (got is None and expected is None)

    def test_scalar_rate_broadcasts(self, rng):
        records = [sine(2048, 1e9, 1.3e8, 0.3) for _ in range(3)]
        batch = metering.oscillation_frequency_batch(records, 1e9)
        assert batch == [metering.oscillation_frequency(r, 1e9) for r in records]

    def test_rate_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="2 rates for 1 records"):
            metering.oscillation_frequency_batch([np.zeros(64)], [1e9, 2e9])

    def test_empty_batch(self):
        assert metering.oscillation_frequency_batch([], []) == []


class TestCoordinateDescent:
    def test_finds_separable_optimum(self):
        target = {"gmin_code": 37, "dac_code": 11, "preamp_code": 5}

        def objective(cfg: ConfigWord) -> float:
            return -sum(
                abs(getattr(cfg, k) - v) for k, v in target.items()
            )

        fields = (("gmin_code", 6), ("dac_code", 6), ("preamp_code", 5))
        result = coordinate_descent(objective, ConfigWord(), fields=fields, passes=2)
        for k, v in target.items():
            assert getattr(result.config, k) == v
        assert result.score == 0.0

    def test_memoises_evaluations(self):
        calls = []

        def objective(cfg: ConfigWord) -> float:
            calls.append(cfg.encode())
            return 0.0

        coordinate_descent(objective, ConfigWord(), fields=(("lna_gain", 4),), passes=3)
        assert len(calls) == len(set(calls))


class TestGainPlans:
    def test_vglna_plan_monotone_in_power(self, hero_chip):
        codes = [vglna_gain_plan(hero_chip, p) for p in (-85, -60, -40, -20, 0)]
        assert all(a >= b for a, b in zip(codes, codes[1:]))
        assert codes[0] == 15  # weakest input -> max gain

    def test_segment_plan_covers_paper_ranges(self, hero_chip):
        segments = segment_gain_plan(hero_chip)
        assert len(segments) == 3
        assert segments[0].power_lo_dbm == -85.0
        assert segments[2].power_hi_dbm == 0.0
        assert segments[0].lna_gain > segments[2].lna_gain


class TestProcedure:
    def test_capacitor_tuning_hits_target(self, hero_chip, quick_calibration, ref_standard):
        achieved = quick_calibration.achieved_frequency
        assert achieved == pytest.approx(ref_standard.f_center, rel=0.004)

    def test_gmq_backed_off_near_critical(self, hero_chip, quick_calibration):
        # The empirical oscillation detector can disagree with the
        # analytic threshold by one code (marginal growth within the
        # capture window), so the calibrated code sits within a small
        # band at/below the analytic critical code.
        cfg = quick_calibration.config
        critical = hero_chip.blocks.tank.critical_gmq_code(
            cfg.cc_coarse, cfg.cf_fine
        )
        assert critical - 3 <= cfg.gmq_code <= critical

    def test_loop_restored(self, quick_calibration):
        cfg = quick_calibration.config
        assert cfg.fb_en == 1
        assert cfg.dac_en == 1
        assert cfg.comp_clk_en == 1
        assert cfg.gmin_en == 1
        assert cfg.delay_code == NOMINAL_DELAY_CODE

    def test_calibrated_snr_meets_loose_spec(self, quick_calibration):
        # Quick mode (1 pass, short FFT) still gets close to spec.
        assert quick_calibration.snr_db > 35.0

    def test_measurement_count_is_bounded(self, quick_calibration):
        # The guided calibration needs ~tens of measurements, not 2^64.
        assert quick_calibration.n_measurements < 300

    def test_log_covers_all_14_steps(self, quick_calibration):
        steps = {entry.step for entry in quick_calibration.log}
        assert steps == set(range(1, 15))

    def test_keys_unique_per_chip(self, fab, ref_standard, quick_calibration):
        other = Calibrator(n_fft=2048, optimizer_passes=1, sfdr_weight=0.0).calibrate(
            Chip(variations=fab.draw(1)), ref_standard
        )
        assert other.config.encode() != quick_calibration.config.encode()


class TestSpeculativeBatchedDescent:
    """Batched probing must replay the sequential descent exactly."""

    def _noisy_objective(self):
        # Deterministic but non-separable: couples fields so the accept
        # path actually matters, with plateaus to exercise ties.
        def score(cfg: ConfigWord) -> float:
            return (
                -abs(cfg.gmin_code - 37)
                - 0.5 * abs(cfg.dac_code - 11)
                - 0.25 * abs((cfg.gmin_code % 5) - (cfg.preamp_code % 5))
            )
        return score

    @pytest.mark.parametrize("speculation", ["rounds", "deep"])
    def test_replay_identical_to_sequential(self, speculation):
        objective = self._noisy_objective()
        fields = (("gmin_code", 6), ("dac_code", 6), ("preamp_code", 5))
        sequential = coordinate_descent(
            objective, ConfigWord(), fields=fields, passes=2
        )
        batched = coordinate_descent(
            objective,
            ConfigWord(),
            fields=fields,
            passes=2,
            batch_objective=lambda configs: [objective(c) for c in configs],
            speculation=speculation,
        )
        assert batched.config == sequential.config
        assert batched.score == sequential.score
        assert batched.n_evaluations == sequential.n_evaluations
        assert [(t.config, t.score) for t in batched.trace] == [
            (t.config, t.score) for t in sequential.trace
        ]

    def test_unknown_speculation_rejected(self):
        with pytest.raises(ValueError, match="speculation"):
            coordinate_descent(
                lambda c: 0.0,
                ConfigWord(),
                batch_objective=lambda cs: [0.0] * len(cs),
                speculation="wild",
            )

    def test_sequential_mode_never_speculates(self):
        calls = []

        def objective(cfg: ConfigWord) -> float:
            calls.append(cfg.encode())
            return 0.0

        coordinate_descent(objective, ConfigWord(), fields=(("lna_gain", 4),))
        assert len(calls) == len(set(calls))  # memoised, probe-for-probe


class TestDeadDie:
    """A die whose tank dies mid-bisection fails loudly and typed."""

    def test_calibrate_raises_with_log_and_die(
        self, hero_chip, ref_standard, monkeypatch
    ):
        real = oscillation_frequency
        calls = []

        def dies_mid_bisection(samples, fs):
            calls.append(1)
            if len(calls) > 4:  # a few healthy readings, then silence
                return None
            return real(samples, fs)

        monkeypatch.setattr(
            metering, "oscillation_frequency", dies_mid_bisection
        )
        with pytest.raises(CalibrationFailed) as excinfo:
            Calibrator(n_fft=1024, optimizer_passes=1, sfdr_weight=0.0).calibrate(
                hero_chip, ref_standard
            )
        failure = excinfo.value
        assert isinstance(failure, RuntimeError)  # old catchers still work
        assert failure.step == 6
        assert failure.chip_id == hero_chip.chip_id
        # The completed steps ride the exception for lot triage.
        assert [entry.step for entry in failure.log] == [1, 2, 3, 4, 5]
        assert "failed to oscillate" in str(failure)

    def test_step_method_raises_typed_failure(
        self, hero_chip, ref_standard, monkeypatch
    ):
        from repro.receiver import ConfigWord

        monkeypatch.setattr(
            metering, "oscillation_frequency", lambda samples, fs: None
        )
        with pytest.raises(CalibrationFailed) as excinfo:
            Calibrator().tune_capacitor_arrays(
                hero_chip, ConfigWord(), ref_standard
            )
        assert excinfo.value.step == 6


class TestBatchedCalibrator:
    @pytest.mark.slow
    def test_batched_calibration_identical(self, hero_chip, ref_standard):
        """The tentpole exactness claim: batch probing cannot change the
        secret key, the score, the log or the measurement count."""
        sequential = Calibrator(
            n_fft=2048, optimizer_passes=1, batch_probing=False
        ).calibrate(hero_chip, ref_standard)
        for speculation in ("rounds", "deep"):
            batched = Calibrator(
                n_fft=2048,
                optimizer_passes=1,
                batch_probing=True,
                speculation=speculation,
            ).calibrate(hero_chip, ref_standard)
            assert batched.config == sequential.config
            assert batched.snr_db == sequential.snr_db
            assert batched.sfdr_db == sequential.sfdr_db
            assert batched.n_measurements == sequential.n_measurements
            assert batched.log == sequential.log

    def test_speculation_auto_resolves(self):
        assert Calibrator()._speculation_depth() in ("rounds", "deep")
        assert Calibrator(speculation="deep")._speculation_depth() == "deep"
        assert Calibrator(speculation="rounds")._speculation_depth() == "rounds"
