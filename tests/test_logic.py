"""Logic substrate tests: netlists, bench circuits, locking, CNF, SAT."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import (
    CnfBuilder,
    Gate,
    Netlist,
    decimation_controller,
    encode_netlist,
    functional_under_key,
    lock_netlist,
    magnitude_comparator,
    parity_tree,
    ripple_adder,
    sar_optimizer_step,
    solve_cnf,
)


class TestGates:
    def test_gate_arity_guards(self):
        with pytest.raises(ValueError):
            Gate("y", "NOT", ("a", "b"))
        with pytest.raises(ValueError):
            Gate("y", "MUX", ("a", "b"))
        with pytest.raises(ValueError):
            Gate("y", "AND", ("a",))
        with pytest.raises(ValueError):
            Gate("y", "FOO", ("a", "b"))

    def test_basic_truth_tables(self):
        net = Netlist("t", inputs=["a", "b"])
        net.add_gate("and_", "AND", "a", "b")
        net.add_gate("or_", "OR", "a", "b")
        net.add_gate("xor_", "XOR", "a", "b")
        net.add_gate("nand_", "NAND", "a", "b")
        net.outputs = ["and_", "or_", "xor_", "nand_"]
        for a, b in itertools.product((0, 1), repeat=2):
            out = net.evaluate({"a": a, "b": b})
            assert out["and_"] == (a & b)
            assert out["or_"] == (a | b)
            assert out["xor_"] == (a ^ b)
            assert out["nand_"] == 1 - (a & b)

    def test_mux(self):
        net = Netlist("m", inputs=["s", "a", "b"])
        net.add_gate("y", "MUX", "s", "a", "b")
        net.outputs = ["y"]
        assert net.evaluate({"s": 0, "a": 1, "b": 0})["y"] == 1
        assert net.evaluate({"s": 1, "a": 1, "b": 0})["y"] == 0

    def test_combinational_loop_detected(self):
        net = Netlist("loop", inputs=["a"])
        net.add_gate("x", "AND", "a", "y")
        net.add_gate("y", "OR", "x", "a")
        net.outputs = ["y"]
        with pytest.raises(ValueError):
            net.validate()

    def test_undriven_net_detected(self):
        net = Netlist("u", inputs=["a"])
        net.add_gate("y", "AND", "a", "ghost")
        net.outputs = ["y"]
        with pytest.raises(ValueError):
            net.validate()

    def test_double_drive_rejected(self):
        net = Netlist("d", inputs=["a", "b"])
        net.add_gate("y", "AND", "a", "b")
        with pytest.raises(ValueError):
            net.add_gate("y", "OR", "a", "b")

    def test_missing_input_value(self):
        net = Netlist("mi", inputs=["a", "b"])
        net.add_gate("y", "AND", "a", "b")
        net.outputs = ["y"]
        with pytest.raises(KeyError):
            net.evaluate({"a": 1})


class TestBenchCircuits:
    def test_adder_exhaustive(self):
        add = ripple_adder(3)
        for a in range(8):
            for b in range(8):
                assert add.evaluate_word(a | (b << 3)) == a + b

    def test_comparator_exhaustive(self):
        cmp4 = magnitude_comparator(4)
        for a in range(16):
            for b in range(16):
                assert cmp4.evaluate_word(a | (b << 4)) == int(a > b)

    def test_parity(self):
        par = parity_tree(5)
        for word in range(32):
            assert par.evaluate_word(word) == bin(word).count("1") % 2

    def test_decimation_controller_spot_checks(self):
        net = decimation_controller()
        out = net.evaluate(
            {"std0": 1, "std1": 1, "std2": 1, "rate0": 0, "rate1": 0}
        )
        assert out["cic_clr"] == 1  # reserved code 7
        out = net.evaluate(
            {"std0": 0, "std1": 0, "std2": 0, "rate0": 1, "rate1": 1}
        )
        assert out["hb1_en"] == 0
        assert out["hb2_en"] == 0

    def test_sar_step_keeps_bit_when_higher(self):
        net = sar_optimizer_step(4)
        vec = {"higher": 1}
        for i in range(4):
            vec[f"code{i}"] = int(i == 3)
            vec[f"mask{i}"] = int(i == 3)
        out = net.evaluate(vec)
        assert out["next3"] == 1  # kept
        assert out["next2"] == 1  # next trial bit set

    def test_sar_step_clears_bit_when_lower(self):
        net = sar_optimizer_step(4)
        vec = {"higher": 0}
        for i in range(4):
            vec[f"code{i}"] = int(i == 3)
            vec[f"mask{i}"] = int(i == 3)
        out = net.evaluate(vec)
        assert out["next3"] == 0  # cleared
        assert out["next2"] == 1


class TestLocking:
    @pytest.mark.parametrize("maker", [decimation_controller, lambda: ripple_adder(3)])
    def test_correct_key_restores_function(self, maker, rng):
        original = maker()
        locked = lock_netlist(original, 6, rng)
        assert functional_under_key(locked, original, locked.correct_key, 40, rng)

    def test_wrong_key_breaks_function(self, rng):
        original = decimation_controller()
        locked = lock_netlist(original, 8, rng)
        wrong = locked.correct_key ^ 0b101
        assert not functional_under_key(locked, original, wrong, 64, rng)

    def test_too_many_key_bits_rejected(self, rng):
        with pytest.raises(ValueError):
            lock_netlist(parity_tree(3), 50, rng)

    def test_key_inputs_added(self, rng):
        locked = lock_netlist(parity_tree(4), 3, rng)
        assert sum(1 for n in locked.netlist.inputs if n.startswith("key")) == 3


class TestCnfAndSat:
    def test_simple_sat(self):
        b = CnfBuilder()
        x, y = b.new_var(), b.new_var()
        b.add_clause(x, y)
        b.add_clause(-x, y)
        result = solve_cnf(b.n_vars, b.clauses)
        assert result.satisfiable
        assert result.assignment[y] is True

    def test_simple_unsat(self):
        b = CnfBuilder()
        x = b.new_var()
        b.add_clause(x)
        b.add_clause(-x)
        assert not solve_cnf(b.n_vars, b.clauses).satisfiable

    def test_pigeonhole_unsat(self):
        b = CnfBuilder()
        v = {(i, j): b.new_var() for i in range(4) for j in range(3)}
        for i in range(4):
            b.add_clause(*[v[(i, j)] for j in range(3)])
        for j in range(3):
            for i1 in range(4):
                for i2 in range(i1 + 1, 4):
                    b.add_clause(-v[(i1, j)], -v[(i2, j)])
        assert not solve_cnf(b.n_vars, b.clauses).satisfiable

    def test_empty_clause_rejected(self):
        with pytest.raises(ValueError):
            CnfBuilder().add_clause()

    def test_literal_out_of_range(self):
        with pytest.raises(ValueError):
            solve_cnf(1, [(2,)])

    @given(st.integers(min_value=0, max_value=2**10 - 1))
    @settings(max_examples=25, deadline=None)
    def test_tseitin_equisatisfiable_with_evaluation(self, word):
        net = decimation_controller()
        # Pad/truncate the random word onto the 5 inputs.
        vec = {name: (word >> i) & 1 for i, name in enumerate(net.inputs)}
        builder = CnfBuilder()
        mapping = encode_netlist(builder, net)
        for name, val in vec.items():
            builder.add_clause(mapping[name] if val else -mapping[name])
        result = solve_cnf(builder.n_vars, builder.clauses)
        assert result.satisfiable
        reference = net.evaluate(vec)
        for out_net in net.outputs:
            assert result.assignment[mapping[out_net]] == bool(reference[out_net])

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_solver_agrees_with_brute_force_on_random_3sat(self, seed):
        rng = np.random.default_rng(seed)
        n_vars, n_clauses = 8, 28
        clauses = []
        for _ in range(n_clauses):
            lits = rng.choice(np.arange(1, n_vars + 1), size=3, replace=False)
            signs = rng.choice([-1, 1], size=3)
            clauses.append(tuple(int(s * l) for s, l in zip(signs, lits)))
        result = solve_cnf(n_vars, clauses)
        brute_sat = any(
            all(
                any(
                    (assignment >> (abs(l) - 1)) & 1 == (1 if l > 0 else 0)
                    for l in clause
                )
                for clause in clauses
            )
            for assignment in range(1 << n_vars)
        )
        assert result.satisfiable == brute_sat
        if result.satisfiable:
            for clause in clauses:
                assert any(
                    result.assignment.get(abs(l), False) == (l > 0) for l in clause
                )
