"""Process-variation model tests: determinism, uniqueness, neutrality."""

import numpy as np
import pytest

from repro.process import ChipFactory, ProcessModel, typical_chip


def test_draws_are_deterministic():
    a = ChipFactory(lot_seed=7).draw(3)
    b = ChipFactory(lot_seed=7).draw(3)
    assert a.summary() == b.summary()
    assert np.array_equal(a.coarse_unit_scales, b.coarse_unit_scales)


def test_chips_are_unique():
    fab = ChipFactory(lot_seed=7)
    a, b = fab.draw(0), fab.draw(1)
    assert a.summary() != b.summary()


def test_lots_are_unique():
    a = ChipFactory(lot_seed=1).draw(0)
    b = ChipFactory(lot_seed=2).draw(0)
    assert a.summary() != b.summary()


def test_typical_chip_is_neutral():
    t = typical_chip()
    assert t.inductor_scale == 1.0
    assert t.comp_offset == 0.0
    assert np.all(t.coarse_unit_scales == 1.0)
    assert np.all(t.lna_stage_gain_err_db == 0.0)


def test_scales_within_three_sigma():
    model = ProcessModel()
    fab = ChipFactory(lot_seed=11, model=model)
    for cid in range(40):
        v = fab.draw(cid)
        assert abs(v.inductor_scale - 1.0) <= 3 * model.inductor_sigma + 1e-12
        assert abs(v.c_fixed_scale - 1.0) <= 3 * model.c_fixed_sigma + 1e-12
        assert np.all(
            np.abs(v.coarse_unit_scales - 1.0) <= 3 * model.unit_cap_sigma + 1e-12
        )


def test_batch_matches_individual_draws():
    fab = ChipFactory(lot_seed=5)
    batch = fab.batch(4)
    assert [v.chip_id for v in batch] == [0, 1, 2, 3]
    assert batch[2].summary() == fab.draw(2).summary()


def test_population_statistics(rng):
    # Across many chips the mean scale should hover near 1.
    fab = ChipFactory(lot_seed=3)
    scales = [fab.draw(i).gmin_scale for i in range(100)]
    assert np.mean(scales) == pytest.approx(1.0, abs=0.03)
    assert np.std(scales) == pytest.approx(ProcessModel().gm_sigma, rel=0.4)
