"""Fault-injection tests: the self-healing acceptance guards.

The differential property under test: reports stay byte-identical to a
fault-free run across any crash schedule the :mod:`repro.faults` plan
can express — workers killed after computing but before reporting,
workers hung mid-dispatch (watchdog reclaim), torn store entries and
journal appends — across backends and worker counts, with tenant
meters landing on exactly the fault-free counts (no double-charging).
Plus the unit semantics of the plan itself: deterministic given a seed
and spec, unknown points rejected, spec round-trips.
"""

import os
import pickle
import signal
import tempfile
import threading
import time
import uuid

import pytest

from repro import faults
from repro.campaigns import CampaignCell, ThreatScenario, run_campaign
from repro.engine import CalibrationStore
from repro.engine.store import DIGEST_BYTES, ENTRY_MAGIC, EVENTS_FILE
from repro.service import (
    CampaignJob,
    DaemonClient,
    FoundryDaemon,
    FoundryService,
    JobFailed,
    JobJournal,
    TenantMeter,
)
from repro.service.client import DaemonUnavailableError
from repro.service.jobs import (
    TASK_RETRIES_ENV,
    TASK_TIMEOUT_ENV,
    TaskRetriesExhausted,
    task_retry_budget,
    task_timeout_seconds,
)


def oracle_cells(n: int = 4, budget: int = 6) -> tuple:
    """Cheap oracle-only cells (no calibration in the loop)."""
    base = ThreatScenario(budget=budget, n_fft=1024, seed=5)
    return tuple(CampaignCell("brute-force", base.with_(seed=s)) for s in range(n))


def short_socket() -> str:
    """A socket path short enough for AF_UNIX (pytest tmp_path is not)."""
    return os.path.join(
        tempfile.gettempdir(), f"repro-{uuid.uuid4().hex[:10]}.sock"
    )


def report_bytes(reports) -> list:
    """Per-report pickle bytes (the byte-for-byte identity the guards
    compare; see ``tests/test_daemon.py``)."""
    return [pickle.dumps(pickle.loads(pickle.dumps(r))) for r in reports]


@pytest.fixture(autouse=True)
def _disarm_faults():
    """Every test leaves the process with no fault plan installed."""
    yield
    faults.install(None)


@pytest.fixture
def daemon_factory(tmp_path):
    """Start daemons on short sockets and always stop them."""
    started = []

    def factory(tag="d", **kwargs):
        kwargs.setdefault("n_workers", 2)
        daemon = FoundryDaemon(tmp_path / tag, socket=short_socket(), **kwargs)
        daemon.start()
        started.append(daemon)
        return daemon

    yield factory
    for daemon in started:
        daemon.stop()


# ---------------------------------------------------------------------------
# The plan itself
# ---------------------------------------------------------------------------


class TestFaultPlanSemantics:
    def test_every_at_and_times(self):
        plan = faults.FaultPlan([
            faults.FaultRule("frame.drop", every=3),
            faults.FaultRule("frame.truncate", at=(2, 5)),
            faults.FaultRule("task.hang", every=2, times=1),
        ])
        drops = [plan.should_fire("frame.drop") for _ in range(7)]
        assert drops == [False, False, True, False, False, True, False]
        cuts = [plan.should_fire("frame.truncate") for _ in range(6)]
        assert cuts == [False, True, False, False, True, False]
        hangs = [plan.should_fire("task.hang") for _ in range(6)]
        assert hangs == [False, True, False, False, False, False]  # capped
        # Points with no rule never fire and cost nothing.
        assert not any(
            plan.should_fire("store.torn_entry") for _ in range(10)
        )

    def test_p_selection_is_deterministic_given_seed(self):
        def firings(seed):
            plan = faults.FaultPlan(
                [faults.FaultRule("frame.drop", p=0.3)], seed=seed
            )
            return [plan.should_fire("frame.drop") for _ in range(200)]

        first, again = firings(7), firings(7)
        assert first == again  # same seed: the same hits, always
        assert 10 < sum(first) < 110  # a plausible 0.3 fraction
        assert firings(8) != first  # the seed actually selects

    def test_unknown_point_and_armless_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            faults.FaultRule("task.crash_before_repart", every=1)
        with pytest.raises(ValueError, match="needs every=, at= or p="):
            faults.FaultRule("frame.drop")
        with pytest.raises(ValueError, match="every must be"):
            faults.FaultRule("frame.drop", every=0)
        with pytest.raises(ValueError, match="p must be"):
            faults.FaultRule("frame.drop", p=1.5)
        with pytest.raises(ValueError, match="duplicate rule"):
            faults.FaultPlan([
                faults.FaultRule("frame.drop", every=1),
                faults.FaultRule("frame.drop", at=(1,)),
            ])

    def test_spec_roundtrip(self):
        text = (
            "task.crash_before_report:every=5,times=2;"
            "frame.truncate:at=2/7,seed=9;task.hang:p=0.25"
        )
        plan = faults.parse_spec(text)
        assert plan.seed == 9
        assert plan.rules["task.crash_before_report"].every == 5
        assert plan.rules["task.crash_before_report"].times == 2
        assert plan.rules["frame.truncate"].at == frozenset({2, 7})
        assert plan.rules["task.hang"].p == 0.25
        reparsed = faults.parse_spec(plan.spec())
        assert reparsed.seed == plan.seed
        for point, rule in plan.rules.items():
            again = reparsed.rules[point]
            assert (rule.every, rule.at, rule.p, rule.times) == (
                again.every, again.at, again.p, again.times
            )

    def test_spec_errors(self):
        with pytest.raises(ValueError, match="malformed fault clause"):
            faults.parse_spec("just-a-point")
        with pytest.raises(ValueError, match="malformed fault option"):
            faults.parse_spec("frame.drop:every")
        with pytest.raises(ValueError, match="unknown fault option"):
            faults.parse_spec("frame.drop:whenever=1")
        with pytest.raises(ValueError, match="unknown injection point"):
            faults.parse_spec("frame.dorp:every=1")

    def test_env_install(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "frame.drop:at=1")
        faults._install_from_env()
        try:
            assert faults.ENABLED
            assert faults.active().rules["frame.drop"].at == frozenset({1})
            assert faults.fire("frame.drop") is True
            assert faults.fire("frame.drop") is False
        finally:
            faults.install(None)
        assert not faults.ENABLED
        assert faults.fire("frame.drop") is False  # disarmed: never fires

    def test_torn_keeps_a_strict_prefix(self):
        assert faults.torn(b"abcdefgh") == b"abcd"
        assert faults.torn(b"x") == b"x"[:1]
        assert faults.torn(b"xy") == b"x"


# ---------------------------------------------------------------------------
# Store integrity (checksummed entries, torn audit log)
# ---------------------------------------------------------------------------


class TestStoreIntegrity:
    def test_corrupted_complete_entry_is_a_miss(self, tmp_path):
        store = CalibrationStore(tmp_path / "s")
        store.put(("die", 1), {"gain": 1.5}, event="cal")
        assert store.get(("die", 1)) == {"gain": 1.5}
        entry = store._entry(("die", 1))
        data = bytearray(entry.read_bytes())
        assert bytes(data[:len(ENTRY_MAGIC)]) == ENTRY_MAGIC
        data[-1] ^= 0xFF  # complete file, silently corrupted payload
        entry.write_bytes(bytes(data))
        assert store.get(("die", 1)) is None  # miss, not an unpickle crash
        store.put(("die", 1), {"gain": 1.5})  # recompute heals it
        assert store.get(("die", 1)) == {"gain": 1.5}

    def test_corrupted_digest_is_a_miss(self, tmp_path):
        store = CalibrationStore(tmp_path / "s")
        store.put(("die", 2), 42)
        entry = store._entry(("die", 2))
        data = bytearray(entry.read_bytes())
        data[len(ENTRY_MAGIC)] ^= 0xFF  # flip a digest byte instead
        entry.write_bytes(bytes(data))
        assert store.get(("die", 2)) is None

    def test_legacy_entry_without_magic_still_reads(self, tmp_path):
        store = CalibrationStore(tmp_path / "s")
        key = ("die", "legacy")
        store._entry(key).write_bytes(pickle.dumps((key, "old-value")))
        assert store.get(key) == "old-value"

    def test_torn_audit_trailing_line_is_dropped(self, tmp_path):
        store = CalibrationStore(tmp_path / "s")
        store.put(("a", 1), 1)
        store.put(("b", 2), 2)
        with open(tmp_path / "s" / EVENTS_FILE, "ab") as fh:
            fh.write(b"999 ('c', 3")  # killed mid-append: no newline
        events = store.compute_events()
        assert len(events) == 2
        assert all("'c'" not in line for line in events)

    def test_torn_entry_fault_degrades_to_miss(self, tmp_path):
        store = CalibrationStore(tmp_path / "s")
        faults.install(faults.parse_spec("store.torn_entry:at=1"))
        store.put(("die", 9), [1.0, 2.0])
        assert store.get(("die", 9)) is None  # torn: a miss
        store.put(("die", 9), [1.0, 2.0])  # second write is clean
        assert store.get(("die", 9)) == [1.0, 2.0]

    def test_torn_audit_fault_is_survivable(self, tmp_path):
        store = CalibrationStore(tmp_path / "s")
        faults.install(faults.parse_spec("store.torn_audit:at=1"))
        store.put(("die", 5), 5)
        assert store.get(("die", 5)) == 5  # the entry itself is whole
        assert store.compute_events() == []  # torn line dropped, not garbled


# ---------------------------------------------------------------------------
# Journal torn appends
# ---------------------------------------------------------------------------


class TestJournalTorn:
    def test_torn_cell_append_resumes_bit_identically(self, tmp_path):
        cells = oracle_cells(3)
        uninterrupted = run_campaign(cells, n_workers=1)
        journal = str(tmp_path / "journal")
        faults.install(faults.parse_spec("journal.torn_append:at=2"))
        first = run_campaign(cells, n_workers=1, journal=journal)
        faults.install(None)
        # The run itself is unharmed (results assemble in memory) ...
        assert report_bytes(first.reports) == report_bytes(
            uninterrupted.reports
        )
        # ... but the torn entry reads as unfinished, so a resume
        # re-executes exactly that cell and reproduces the same bytes.
        torn = [
            i for i in range(len(cells))
            if JobJournal(journal).get_cell(i) is None
        ]
        assert len(torn) == 1
        resumed = run_campaign(cells, n_workers=1, journal=journal)
        assert report_bytes(resumed.reports) == report_bytes(
            uninterrupted.reports
        )
        assert JobJournal(journal).get_cell(torn[0]) is not None


# ---------------------------------------------------------------------------
# Crash transparency: the differential guard
# ---------------------------------------------------------------------------


class TestCrashTransparency:
    def test_crash_schedule_bitidentical_across_backends_and_workers(self):
        """The acceptance property: a campaign whose workers are killed
        after computing results (but before reporting them) reproduces
        the fault-free reports byte-for-byte, per backend, per worker
        count — the supervisor respawns, requeues and retries without
        touching determinism."""
        cells = oracle_cells(4)
        for backend in ("reference", "vectorized"):
            reference = run_campaign(cells, n_workers=1, backend=backend)
            expected = report_bytes(reference.reports)
            for n_workers in (1, 2, 4):
                # at=2: each worker dies reporting its second task, so
                # every retry (the respawn's *first* task) succeeds.
                faults.install(
                    faults.parse_spec("task.crash_before_report:at=2")
                )
                result = run_campaign(
                    cells, n_workers=n_workers, backend=backend
                )
                faults.install(None)
                assert result.reports == reference.reports
                assert report_bytes(result.reports) == expected

    def test_hung_worker_reclaimed_by_watchdog(self, monkeypatch):
        """A worker frozen whole (SIGSTOP: heartbeats stop too) is
        killed by the watchdog, its task retried, reports unchanged."""
        monkeypatch.setenv(TASK_TIMEOUT_ENV, "2")
        assert task_timeout_seconds() == 2.0
        cells = oracle_cells(4)
        reference = run_campaign(cells, n_workers=1)
        faults.install(faults.parse_spec("task.hang:at=2"))
        result = run_campaign(cells, n_workers=2)
        faults.install(None)
        assert report_bytes(result.reports) == report_bytes(
            reference.reports
        )

    def test_retry_budget_exhaustion_is_typed_and_carries_attempts(
        self, monkeypatch
    ):
        monkeypatch.setenv(TASK_RETRIES_ENV, "2")
        assert task_retry_budget() == 2
        faults.install(faults.parse_spec("task.crash_before_report:every=1"))
        # n_workers=2: a one-worker campaign runs in-parent, where no
        # worker fault can fire.
        handle = FoundryService().submit(
            CampaignJob(cells=oracle_cells(2), n_workers=2)
        )
        with pytest.raises(TaskRetriesExhausted) as excinfo:
            handle.result()
        faults.install(None)
        exc = excinfo.value
        assert isinstance(exc, JobFailed)  # existing handlers still catch
        assert len(exc.attempts) == 2
        assert all("exit code 86" in note for note in exc.attempts)
        assert TASK_RETRIES_ENV in str(exc)
        assert "attempt 1" in str(exc) and "attempt 2" in str(exc)

    def test_env_knob_validation(self, monkeypatch):
        monkeypatch.setenv(TASK_RETRIES_ENV, "0")
        with pytest.raises(ValueError, match=TASK_RETRIES_ENV):
            task_retry_budget()
        monkeypatch.setenv(TASK_TIMEOUT_ENV, "-3")
        with pytest.raises(ValueError, match=TASK_TIMEOUT_ENV):
            task_timeout_seconds()
        monkeypatch.setenv(TASK_TIMEOUT_ENV, "0")
        assert task_timeout_seconds() is None  # 0 disables the watchdog
        monkeypatch.delenv(TASK_TIMEOUT_ENV)
        assert task_timeout_seconds() is None


# ---------------------------------------------------------------------------
# Supervision races (regression guards for the sweep's kill/drain order
# and the broken-pipe slot flag)
# ---------------------------------------------------------------------------


class TestSupervisionRaces:
    def test_late_result_from_hung_worker_settles_once(self, monkeypatch):
        """The kill-then-drain regression guard: a worker flagged hung
        (stalled heartbeat) that delivers its result inside the kill
        window must have that result *drained and settled*, not lost.
        The old drain-before-kill order drained an empty pipe, requeued
        the task, and ran it twice; with ``REPRO_TASK_RETRIES=1`` that
        lost-result requeue is a :class:`TaskRetriesExhausted` — so the
        run completing bit-identically IS the regression assertion."""
        import repro.service.scheduler as scheduler_module

        monkeypatch.setenv(TASK_TIMEOUT_ENV, "1")
        monkeypatch.setenv(TASK_RETRIES_ENV, "1")
        real_kill = scheduler_module.kill_slot

        def slow_kill(slot, note_kill):
            # Widen the window between "flagged hung" and "actually
            # killed" so the stalled worker (which wakes, computes and
            # sends ~1.6s in) reliably lands its result inside it even
            # on a loaded host.
            time.sleep(4.0)
            return real_kill(slot, note_kill)

        monkeypatch.setattr(scheduler_module, "kill_slot", slow_kill)
        cells = oracle_cells(2)
        reference = run_campaign(cells, n_workers=1)
        faults.install(faults.parse_spec("task.stall_heartbeat:at=1"))
        result = run_campaign(cells, n_workers=2)
        faults.install(None)
        assert report_bytes(result.reports) == report_bytes(
            reference.reports
        )

    def test_torn_pipe_worker_is_reaped_not_livelocked(self):
        """A worker whose pipe tears while the process stays alive with
        a beating heartbeat: the dispatch failure must flag the slot so
        the sweep reaps and respawns it.  An unflagged slot looks idle
        forever — the single-worker round then never dispatches again
        (livelock), which is why the campaign is driven from a thread
        with a deadline."""
        cells = oracle_cells(2)
        reference = run_campaign(cells, n_workers=1)
        outcome = {}

        def drive():
            outcome["result"] = run_campaign(cells, n_workers=2)

        faults.install(faults.parse_spec("worker.torn_conn:at=1"))
        thread = threading.Thread(target=drive, daemon=True)
        thread.start()
        thread.join(timeout=120)
        faults.install(None)
        assert not thread.is_alive(), "torn-pipe slot livelocked the round"
        assert report_bytes(outcome["result"].reports) == report_bytes(
            reference.reports
        )

    def test_fleet_late_result_settles_once(self, daemon_factory, monkeypatch):
        """The same kill/drain race guard on the daemon fleet's router
        sweep, with the same retries=1 sharpening."""
        import repro.service.daemon as daemon_module

        monkeypatch.setenv(TASK_TIMEOUT_ENV, "1")
        monkeypatch.setenv(TASK_RETRIES_ENV, "1")
        real_kill = daemon_module.kill_slot

        def slow_kill(slot, note_kill):
            time.sleep(4.0)
            return real_kill(slot, note_kill)

        monkeypatch.setattr(daemon_module, "kill_slot", slow_kill)
        cells = oracle_cells(2)
        reference = FoundryService().submit(
            CampaignJob(cells=cells, n_workers=1)
        ).result()
        # Armed before the daemon forks its fleet: workers inherit it.
        faults.install(faults.parse_spec("task.stall_heartbeat:at=1"))
        daemon = daemon_factory("race", n_workers=2)
        client = DaemonClient(socket=daemon.address)
        result = client.submit(
            CampaignJob(cells=cells, n_workers=2)
        ).result(timeout=600)
        faults.install(None)
        assert report_bytes(result.reports) == report_bytes(
            reference.reports
        )

    def test_fleet_torn_pipe_is_reaped_not_livelocked(self, daemon_factory):
        """Torn-pipe reaping on the fleet: a one-worker fleet whose
        worker tears its pipe after each result must still finish a
        two-cell job (reap, respawn, redispatch) instead of idling."""
        cells = oracle_cells(2)
        reference = FoundryService().submit(
            CampaignJob(cells=cells, n_workers=1)
        ).result()
        faults.install(faults.parse_spec("worker.torn_conn:at=1"))
        daemon = daemon_factory("torn", n_workers=1)
        client = DaemonClient(socket=daemon.address)
        result = client.submit(
            CampaignJob(cells=cells, n_workers=1)
        ).result(timeout=120)
        faults.install(None)
        assert report_bytes(result.reports) == report_bytes(
            reference.reports
        )


# ---------------------------------------------------------------------------
# Faults on sub-task boundaries (partitioned cells)
# ---------------------------------------------------------------------------


def partitioned_cells() -> tuple:
    """A dominant brute-force cell and a genetic cell, both declaring
    partition plans (key-range chunks / per-generation slices)."""
    bf = ThreatScenario(budget=24, n_fft=1024, seed=5)
    ga = ThreatScenario(budget=32, n_fft=1024, seed=7)
    return (
        CampaignCell("brute-force", bf,
                     attack_params=(("subtask_keys", 6),)),
        CampaignCell("genetic", ga,
                     attack_params=(("population_size", 8),
                                    ("subtask_slices", 2))),
    )


def scalar_equivalents() -> tuple:
    """The same cells without partition knobs — the byte-for-byte
    reference the partitioned runs must reproduce."""
    return tuple(
        CampaignCell(
            cell.attack,
            cell.scenario,
            attack_params=tuple(
                (k, v) for k, v in cell.attack_params
                if k not in ("subtask_keys", "subtask_slices")
            ),
        )
        for cell in partitioned_cells()
    )


class TestSubTaskFaults:
    def test_crash_on_subtask_boundaries_bitidentical(self):
        """Workers crashing on sub-task boundaries (speculative chunk
        scores lost and retried) leave the assembled reports
        byte-identical to a fault-free scalar run."""
        reference = run_campaign(scalar_equivalents(), n_workers=1)
        expected = report_bytes(reference.reports)
        for n_workers in (2, 4):
            faults.install(
                faults.parse_spec("task.crash_before_report:at=2")
            )
            result = run_campaign(partitioned_cells(), n_workers=n_workers)
            faults.install(None)
            assert report_bytes(result.reports) == expected

    def test_hang_on_subtask_boundaries_bitidentical(self, monkeypatch):
        """A worker hanging mid-sub-task is reclaimed by the watchdog;
        the retried chunk reproduces the same speculative scores, so
        assembly stays byte-identical."""
        monkeypatch.setenv(TASK_TIMEOUT_ENV, "2")
        reference = run_campaign(scalar_equivalents(), n_workers=1)
        faults.install(faults.parse_spec("task.hang:at=2"))
        result = run_campaign(partitioned_cells(), n_workers=2)
        faults.install(None)
        assert report_bytes(result.reports) == report_bytes(
            reference.reports
        )

    def test_subtask_crash_after_charge_meters_exactly(self, daemon_factory):
        """Tenant metering through partitioned cells: sub-tasks measure
        unmetered (speculation), every charge lands in the assembly
        replay — so a worker crashing after a replay charge rolls back
        cleanly and the final meter total equals the fault-free scalar
        count exactly."""
        base = ThreatScenario(budget=12, n_fft=1024, seed=5)
        cells = tuple(
            CampaignCell("brute-force", base.with_(seed=s),
                         attack_params=(("subtask_keys", 4),))
            for s in range(4)
        )
        scalar = tuple(
            CampaignCell("brute-force", base.with_(seed=s)) for s in range(4)
        )
        reference = FoundryService().submit(
            CampaignJob(cells=scalar, n_workers=1)
        ).result()
        faults.install(faults.parse_spec("task.crash_after_charge:at=2"))
        daemon = daemon_factory("submeter", n_workers=2)
        client = DaemonClient(socket=daemon.address, tenant="free")
        result = client.submit(
            CampaignJob(cells=cells, n_workers=2)
        ).result(timeout=600)
        faults.install(None)
        assert report_bytes(result.reports) == report_bytes(
            reference.reports
        )
        meter = daemon.tenant_meter("free")
        assert meter.n_queries() == sum(
            r.n_queries for r in reference.reports
        )
        assert list(meter.path.parent.glob(f"{meter.path.name}.r-*")) == []


# ---------------------------------------------------------------------------
# Tenant charge reservations: crash-safe metering
# ---------------------------------------------------------------------------


class TestChargeReservations:
    def test_begin_commit_rollback_mechanics(self, tmp_path):
        worker = TenantMeter(tmp_path / "m.count", tenant="t")
        parent = TenantMeter(tmp_path / "m.count", tenant="t")
        worker.begin_task("job:cell-0")
        worker.charge_batch(5)
        worker.charge_batch(3)
        assert parent.n_queries() == 8
        # The worker "died"; the parent refunds the journaled charges.
        assert parent.rollback_task("job:cell-0") == 8
        assert parent.n_queries() == 0
        assert parent.rollback_task("job:cell-0") == 0  # idempotent
        # The retry succeeds; commit keeps its charges.
        worker.begin_task("job:cell-0")
        worker.charge_batch(4)
        parent.commit_task("job:cell-0")
        assert parent.n_queries() == 4
        assert parent.rollback_task("job:cell-0") == 0  # nothing journaled
        assert parent.n_queries() == 4

    def test_unreserved_charges_have_no_journal(self, tmp_path):
        meter = TenantMeter(tmp_path / "m.count", tenant="t")
        meter.charge_batch(6)  # in-process path: no begin_task
        assert meter.n_queries() == 6
        assert list(tmp_path.glob("m.count.r-*")) == []

    def test_crash_after_charge_never_double_charges(self, daemon_factory):
        """A fleet worker killed *after* its charge landed: the parent
        rolls the journaled charge back before the retry, so the final
        meter count equals the fault-free count exactly — and the
        reports stay byte-identical."""
        cells = oracle_cells(4)
        reference = FoundryService().submit(
            CampaignJob(cells=cells, n_workers=1)
        ).result()
        # Armed before the daemon forks its fleet, so workers inherit
        # the plan; at=2 so each retry (a respawn's first charge) lands.
        faults.install(faults.parse_spec("task.crash_after_charge:at=2"))
        daemon = daemon_factory("meter", n_workers=2)
        client = DaemonClient(socket=daemon.address, tenant="free")
        result = client.submit(
            CampaignJob(cells=cells, n_workers=2)
        ).result(timeout=600)
        faults.install(None)
        assert report_bytes(result.reports) == report_bytes(
            reference.reports
        )
        meter = daemon.tenant_meter("free")
        assert meter.n_queries() == sum(r.n_queries for r in reference.reports)
        # Every reservation was settled: no journal debris left behind.
        assert list(meter.path.parent.glob(f"{meter.path.name}.r-*")) == []


# ---------------------------------------------------------------------------
# Fleet supervision through the daemon
# ---------------------------------------------------------------------------


class TestFleetSupervision:
    def test_killed_fleet_worker_job_still_completes(self, daemon_factory):
        """SIGKILL a fleet worker mid-campaign: the fleet respawns it,
        requeues its task, and the job's reports match a calm run's
        byte-for-byte.  The daemon then keeps serving."""
        cells = oracle_cells(6, budget=12)
        reference = FoundryService().submit(
            CampaignJob(cells=cells, n_workers=1)
        ).result()
        daemon = daemon_factory("kill", n_workers=2)
        client = DaemonClient(socket=daemon.address)
        handle = client.submit(CampaignJob(cells=cells, n_workers=2))
        killed = False
        for _ in handle.stream():
            if not killed:
                os.kill(daemon.fleet.workers[0].pid, signal.SIGKILL)
                killed = True
        result = handle.result(timeout=600)
        assert report_bytes(result.reports) == report_bytes(
            reference.reports
        )
        assert all(worker.is_alive() for worker in daemon.fleet.workers)
        again = client.submit(
            CampaignJob(cells=cells[:1], n_workers=1), job_id="after-kill"
        ).result(timeout=600)
        assert report_bytes(again.reports) == report_bytes(
            reference.reports[:1]
        )

    def test_exhausted_retries_fail_only_that_job(
        self, daemon_factory, monkeypatch
    ):
        monkeypatch.setenv(TASK_RETRIES_ENV, "2")
        faults.install(faults.parse_spec("task.crash_before_report:every=1"))
        daemon = daemon_factory("exh", n_workers=1)
        client = DaemonClient(socket=daemon.address)
        handle = client.submit(CampaignJob(cells=oracle_cells(1), n_workers=1))
        with pytest.raises(JobFailed, match="retry budget"):
            handle.result(timeout=600)
        # Disarm; the *daemon* survived (one job failed, not the fleet)
        # and self-heals: its still-armed worker dies once more, but the
        # respawn forks from the now-disarmed parent and completes.
        faults.install(None)
        ok = client.submit(
            CampaignJob(cells=oracle_cells(1), n_workers=1), job_id="clean"
        )
        assert ok.result(timeout=600) is not None


# ---------------------------------------------------------------------------
# Client resilience
# ---------------------------------------------------------------------------


class TestClientResilience:
    def test_connect_backoff_waits_out_daemon_startup(self, tmp_path):
        """A client racing ``serve`` startup retries with backoff inside
        its connect budget instead of failing on the missing socket."""
        socket_path = short_socket()
        client = DaemonClient(socket=socket_path, timeout=30)
        started = []

        def late_start():
            time.sleep(0.8)
            daemon = FoundryDaemon(
                tmp_path / "late", socket=socket_path, n_workers=1
            )
            daemon.start()
            started.append(daemon)

        thread = threading.Thread(target=late_start)
        thread.start()
        try:
            assert client.ping()["ok"] is True  # no sleep loop needed
        finally:
            thread.join()
            for daemon in started:
                daemon.stop()

    def test_connect_gives_up_within_budget(self):
        client = DaemonClient(socket=short_socket(), timeout=0.5)
        begin = time.monotonic()
        with pytest.raises(DaemonUnavailableError, match="within 0.5s"):
            client.ping()
        assert time.monotonic() - begin < 5.0

    def test_stream_resumes_through_torn_frames(self, daemon_factory):
        """Mid-stream frame faults (dropped and truncated frames) tear
        the connection; the handle reconnects and resumes from the
        events already delivered — every event exactly once."""
        daemon = daemon_factory("stream", n_workers=1)
        client = DaemonClient(socket=daemon.address)
        handle = client.submit(CampaignJob(cells=oracle_cells(4),
                                           n_workers=1))
        handle.result(timeout=600)
        baseline = list(handle.stream())
        assert len(baseline) == 4
        faults.install(
            faults.parse_spec("frame.truncate:every=5;frame.drop:at=2")
        )
        streamed = list(client.handle(handle.job_id).stream())
        faults.install(None)
        assert streamed == baseline

    def test_result_timeout_zero_polls_completed_job(self, daemon_factory):
        daemon = daemon_factory("poll", n_workers=1)
        client = DaemonClient(socket=daemon.address)
        handle = client.submit(CampaignJob(cells=oracle_cells(1),
                                           n_workers=1))
        assert handle.wait(timeout=600) is True
        # Terminal job: a zero-timeout poll returns the result at once.
        assert handle.result(timeout=0) is not None
        assert handle.wait(timeout=0) is True
