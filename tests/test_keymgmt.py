"""Key-management tests: tamper memory, PUF, provisioning, toy RSA."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.keymgmt import (
    ArbiterPuf,
    PufXorScheme,
    RemoteActivator,
    TamperError,
    TamperMemoryScheme,
    TamperProofMemory,
    decrypt,
    encrypt,
    generate_keypair,
    inter_chip_uniqueness,
    intra_chip_stability,
    is_probable_prime,
)
from repro.receiver import ConfigWord

CONFIGS = {0: ConfigWord(cc_coarse=6, cf_fine=62, gmin_code=24), 5: ConfigWord(lna_gain=9)}


class TestTamperMemory:
    def test_store_load_roundtrip(self):
        mem = TamperProofMemory(chip_id=0)
        mem.store(2, CONFIGS[0])
        assert mem.load(2) == CONFIGS[0]
        assert mem.stored_modes() == [2]

    def test_missing_mode(self):
        with pytest.raises(KeyError):
            TamperProofMemory(chip_id=0).load(1)

    def test_raw_read_zeroises(self):
        mem = TamperProofMemory(chip_id=0)
        mem.store(0, CONFIGS[0])
        with pytest.raises(TamperError):
            mem.raw_read_attempt()
        assert mem.zeroised
        with pytest.raises(TamperError):
            mem.load(0)

    def test_index_range(self):
        with pytest.raises(ValueError):
            TamperProofMemory(chip_id=0).store(8, CONFIGS[0])


class TestPuf:
    def test_deterministic_fingerprint(self):
        a = ArbiterPuf(chip_id=4)
        b = ArbiterPuf(chip_id=4)
        challenge = np.ones(64, dtype=int)
        assert a.response_bit_voted(challenge) == b.response_bit_voted(challenge)

    def test_chips_differ(self):
        pufs = [ArbiterPuf(chip_id=i) for i in range(6)]
        uniqueness = inter_chip_uniqueness(pufs, n_bits=32)
        assert 0.3 < uniqueness < 0.7

    def test_voted_responses_stable(self):
        assert intra_chip_stability(ArbiterPuf(chip_id=1), n_bits=32) > 0.95

    def test_challenge_width_guard(self):
        with pytest.raises(ValueError):
            ArbiterPuf(chip_id=0).response_bit(np.ones(10))

    def test_response_word_width(self):
        word = ArbiterPuf(chip_id=2).response_word(0x1234, n_bits=64)
        assert 0 <= word < (1 << 64)


class TestProvisioningSchemes:
    def test_tamper_scheme_roundtrip(self):
        scheme = TamperMemoryScheme(chip_id=1)
        scheme.provision(CONFIGS)
        assert scheme.configuration_for_mode(0) == CONFIGS[0]
        assert scheme.configuration_for_mode(5) == CONFIGS[5]

    def test_puf_xor_roundtrip(self):
        scheme = PufXorScheme(ArbiterPuf(chip_id=7))
        user_keys = scheme.enroll(CONFIGS)
        scheme.power_on(user_keys)
        assert scheme.configuration_for_mode(0) == CONFIGS[0]

    def test_user_keys_hide_configs(self):
        scheme = PufXorScheme(ArbiterPuf(chip_id=7))
        user_keys = scheme.enroll(CONFIGS)
        # The user key is not the configuration itself.
        assert user_keys[0] != CONFIGS[0].encode()

    def test_recycling_protection(self):
        scheme = PufXorScheme(ArbiterPuf(chip_id=7))
        scheme.power_on(scheme.enroll(CONFIGS))
        scheme.power_off()
        with pytest.raises(KeyError):
            scheme.configuration_for_mode(0)

    def test_wrong_chip_user_keys_fail(self):
        keys_for_7 = PufXorScheme(ArbiterPuf(chip_id=7)).enroll(CONFIGS)
        scheme8 = PufXorScheme(ArbiterPuf(chip_id=8))
        scheme8.power_on(keys_for_7)
        assert scheme8.configuration_for_mode(0) != CONFIGS[0]

    def test_remote_activation(self):
        activator = RemoteActivator(chip_id=3, rsa_bits=128)
        ciphertexts = RemoteActivator.design_house_encrypt(
            CONFIGS, activator.public_key
        )
        # Ciphertexts do not leak the plaintext words.
        assert ciphertexts[0] != CONFIGS[0].encode()
        activator.activate(ciphertexts)
        assert activator.configuration_for_mode(0) == CONFIGS[0]


class TestToyRsa:
    def test_known_primes(self, rng):
        for p in (101, 257, 65537):
            assert is_probable_prime(p, rng)
        for n in (1, 100, 65535):
            assert not is_probable_prime(n, rng)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    @settings(max_examples=20, deadline=None)
    def test_encrypt_decrypt_roundtrip(self, message):
        keypair = generate_keypair(bits=128, seed=42)
        assert decrypt(encrypt(message, keypair.public), keypair) == message

    def test_message_range_guard(self):
        keypair = generate_keypair(bits=128, seed=42)
        with pytest.raises(ValueError):
            encrypt(keypair.n, keypair.public)
