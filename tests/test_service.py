"""Foundry-service tests: job lifecycle, work-stealing determinism,
journal resume (including after a hard SIGKILL), provisioning gating,
and up-front validation of worker counts and job payloads."""

import os
import pickle
import signal
import subprocess
import sys
import time

import pytest

from repro.campaigns import (
    CampaignCell,
    ChipSpec,
    ThreatScenario,
    run_campaign,
)
from repro.engine import CalibrationStore
from repro.service import (
    CampaignJob,
    ExperimentJob,
    FoundryService,
    JobCancelled,
    JobFailed,
    JobJournal,
    JobStatus,
    JournalMismatch,
    ProvisioningJob,
    SERVICE_WORKERS_ENV,
    default_worker_count,
    validate_worker_count,
)


def oracle_cells(n: int = 4, budget: int = 6) -> list:
    """Cheap oracle-only cells (no calibration in the loop)."""
    base = ThreatScenario(budget=budget, n_fft=1024, seed=5)
    return [CampaignCell("brute-force", base.with_(seed=s)) for s in range(n)]


def fleet_cells() -> list:
    """A mixed campaign: gated fabric cells on two dies plus oracle and
    bench-scheme cells — the shape that exercises provisioning gating."""
    base = ThreatScenario(budget=6, n_fft=1024, seed=5)
    return [
        CampaignCell("removal", base.with_(chip=ChipSpec(chip_id=0))),
        CampaignCell("brute-force", base),
        CampaignCell("removal", base.with_(chip=ChipSpec(chip_id=1))),
        CampaignCell(
            "brute-force",
            base.with_(scheme="mixlock", scheme_params=(("n_key_bits", 5),)),
        ),
        CampaignCell("removal", base.with_(scheme="memristor")),
    ]


class TestWorkStealingDeterminism:
    """The tentpole acceptance: reports bit-identical to sequential
    execution across worker counts, backends and scheduler modes."""

    def test_worker_counts_and_schedulers_are_bit_identical(self):
        cells = fleet_cells()
        sequential = run_campaign(cells, n_workers=1)
        for n_workers in (2, 4):
            stealing = run_campaign(cells, n_workers=n_workers)
            assert stealing.reports == sequential.reports
            assert stealing.n_workers == n_workers
        static = run_campaign(cells, n_workers=2, scheduler="static")
        assert static.reports == sequential.reports

    def test_backends_bit_identical_through_scheduler(self):
        cells = fleet_cells()[:3]
        reference = run_campaign(cells, n_workers=2, backend="reference")
        vectorized = run_campaign(cells, n_workers=2, backend="vectorized")
        assert reference.reports == vectorized.reports

    def test_stream_completion_order_and_result_order(self):
        cells = oracle_cells(3)
        handle = FoundryService().submit(
            CampaignJob(cells=tuple(cells), n_workers=2)
        )
        events = [e for e in handle.stream() if e.kind == "cell"]
        assert sorted(e.index for e in events) == [0, 1, 2]
        result = handle.result()
        # Whatever order tasks completed in, reports come back in cell
        # order, matching the sequential run exactly.
        assert result.reports == run_campaign(cells).reports


class TestProvisioningFirstClass:
    def test_provision_events_unblock_gated_cells(self, tmp_path):
        """Die calibrations are tasks in the stream, and each die is
        calibrated exactly once campaign-wide (the store audit)."""
        store = str(tmp_path / "store")
        handle = FoundryService().submit(
            CampaignJob(
                cells=tuple(fleet_cells()),
                n_workers=2,
                calibration_store=store,
            )
        )
        kinds = [e.kind for e in handle.stream()]
        handle.result()
        assert kinds.count("provision") == 2  # dies 0 and 1
        assert kinds.count("cell") == len(fleet_cells())
        assert len(CalibrationStore(store).compute_events()) == 2

    def test_provisioning_job_computes_each_triple_once(self, tmp_path):
        store = str(tmp_path / "store")
        job = ProvisioningJob(
            triples=((2020, 0, 0), (2020, 1, 0)), calibration_store=store
        )
        service = FoundryService()
        assert service.submit(job).result() == 2
        assert len(CalibrationStore(store).compute_events()) == 2
        # A resubmission finds the store warm: nothing to compute.
        assert service.submit(job).result() == 0
        assert len(CalibrationStore(store).compute_events()) == 2

    def test_provisioning_job_requires_store(self):
        with pytest.raises(ValueError, match="calibration_store"):
            FoundryService().submit(ProvisioningJob(triples=((2020, 0, 0),)))


class TestJobLifecycle:
    def test_status_transitions_to_completed(self):
        handle = FoundryService().submit(
            CampaignJob(cells=tuple(oracle_cells(2)))
        )
        assert handle.status() is JobStatus.PENDING
        stream = handle.stream()
        next(stream)
        assert handle.status() is JobStatus.RUNNING
        handle.result()
        assert handle.status() is JobStatus.COMPLETED
        # The stream log replays in full for late consumers.
        assert len(list(handle.stream())) == 2

    def test_status_failed_inline(self):
        # An unknown scheme resolves only at execute time: the job
        # passes up-front validation, then fails at its first task.
        bad = CampaignCell("brute-force", ThreatScenario(scheme="adamantium"))
        handle = FoundryService().submit(CampaignJob(cells=(bad,)))
        with pytest.raises(JobFailed, match="adamantium"):
            handle.result()
        assert handle.status() is JobStatus.FAILED
        # result() keeps raising the same failure.
        with pytest.raises(JobFailed):
            handle.result()

    def test_status_failed_in_worker(self):
        cells = oracle_cells(2) + [
            CampaignCell("brute-force", ThreatScenario(scheme="adamantium"))
        ]
        handle = FoundryService().submit(
            CampaignJob(cells=tuple(cells), n_workers=2)
        )
        with pytest.raises(JobFailed, match="adamantium"):
            handle.result()
        assert handle.status() is JobStatus.FAILED

    def test_stream_raises_for_late_consumers_of_failed_job(self):
        bad = CampaignCell("brute-force", ThreatScenario(scheme="adamantium"))
        handle = FoundryService().submit(CampaignJob(cells=(bad,)))
        with pytest.raises(JobFailed):
            handle.result()
        # A late stream consumer must not mistake the failed job for a
        # completed one: the replayed log ends in the same failure.
        with pytest.raises(JobFailed, match="adamantium"):
            list(handle.stream())

    def test_cancel_before_drive_and_after_completion(self):
        service = FoundryService()
        handle = service.submit(CampaignJob(cells=tuple(oracle_cells(1))))
        assert handle.cancel() is True
        assert handle.status() is JobStatus.CANCELLED
        with pytest.raises(JobCancelled):
            handle.result()
        done = service.submit(CampaignJob(cells=tuple(oracle_cells(1))))
        done.result()
        assert done.cancel() is False
        assert done.status() is JobStatus.COMPLETED

    def test_unknown_job_type_rejected(self):
        with pytest.raises(TypeError, match="unknown job type"):
            FoundryService().submit(object())

    def test_unknown_attack_rejected_at_submit(self):
        cell = CampaignCell("rowhammer", ThreatScenario())
        with pytest.raises(KeyError, match="unknown attack"):
            FoundryService().submit(CampaignJob(cells=(cell,)))

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            FoundryService().submit(
                CampaignJob(cells=(), scheduler="mystery")
            )
        with pytest.raises(ValueError, match="unknown scheduler"):
            FoundryService(scheduler="mystery")

    def test_experiment_job_validates_names_at_submit(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            FoundryService().submit(ExperimentJob(names=("fig99",)))


class TestWorkerCountValidation:
    """Satellite: worker counts rejected up front, REPRO_ENGINE_THREADS
    convention (positive integer, valid range in the error)."""

    @pytest.mark.parametrize("bad", [0, -1, -7])
    def test_run_campaign_rejects_non_positive(self, bad):
        with pytest.raises(ValueError, match=r"n_workers must be a positive integer"):
            run_campaign(oracle_cells(2), n_workers=bad)

    def test_error_names_valid_range(self):
        with pytest.raises(ValueError, match=">= 1"):
            validate_worker_count(0)
        with pytest.raises(ValueError, match="got 2.5"):
            validate_worker_count(2.5)

    def test_service_default_rejected_up_front(self):
        with pytest.raises(ValueError, match="n_workers"):
            FoundryService(n_workers=0)

    def test_env_default_parsed_and_validated(self, monkeypatch):
        monkeypatch.delenv(SERVICE_WORKERS_ENV, raising=False)
        assert default_worker_count() == 1
        monkeypatch.setenv(SERVICE_WORKERS_ENV, "3")
        assert default_worker_count() == 3
        for bad in ("0", "-2", "two"):
            monkeypatch.setenv(SERVICE_WORKERS_ENV, bad)
            with pytest.raises(ValueError, match=SERVICE_WORKERS_ENV):
                default_worker_count()

    def test_env_default_reaches_campaigns(self, monkeypatch):
        monkeypatch.setenv(SERVICE_WORKERS_ENV, "2")
        cells = oracle_cells(3)
        result = run_campaign(cells)
        assert result.n_workers == 2
        assert result.reports == run_campaign(cells, n_workers=1).reports


class TestJournalResume:
    def test_cancelled_campaign_resumes_bit_identically(self, tmp_path):
        cells = fleet_cells()
        uninterrupted = run_campaign(cells)
        journal = str(tmp_path / "journal")
        service = FoundryService()
        job = CampaignJob(cells=tuple(cells), n_workers=2, journal=journal)
        handle = service.submit(job)
        finished = 0
        for event in handle.stream():
            if event.kind == "cell":
                finished += 1
                if finished == 2:
                    handle.cancel()
        assert handle.status() is JobStatus.CANCELLED
        with pytest.raises(JobCancelled):
            handle.result()
        # The journal holds exactly the finished cells; resubmitting
        # the identical job replays them and executes only the rest.
        resumed = service.submit(job)
        kinds = [e.kind for e in resumed.stream() if e.kind in ("cell", "replay")]
        assert kinds.count("replay") == finished
        assert kinds.count("cell") == len(cells) - finished
        assert resumed.result().reports == uninterrupted.reports
        # Total journal computes across both runs: one per cell.
        assert len(JobJournal(journal).events()) == len(cells)

    def test_resume_after_sigkill(self, tmp_path):
        """The acceptance property: a campaign whose driver process is
        SIGKILLed mid-run resumes from its journal and reproduces the
        uninterrupted run's reports bit-identically."""
        cells = oracle_cells(6, budget=24)
        uninterrupted = run_campaign(cells)
        journal = str(tmp_path / "journal")
        cells_file = str(tmp_path / "cells.pkl")
        with open(cells_file, "wb") as fh:
            pickle.dump(cells, fh)
        script = (
            "import pickle, sys\n"
            "from repro.service import CampaignJob, FoundryService\n"
            "cells = pickle.load(open(sys.argv[1], 'rb'))\n"
            "handle = FoundryService().submit(CampaignJob(\n"
            "    cells=tuple(cells), n_workers=2, journal=sys.argv[2]))\n"
            "for event in handle.stream():\n"
            "    if event.kind == 'cell':\n"
            "        print('CELL', flush=True)\n"
            "print('ALLDONE', flush=True)\n"
        )
        env = dict(os.environ)
        inherited = env.get("PYTHONPATH")
        env["PYTHONPATH"] = "src" + (os.pathsep + inherited if inherited else "")
        proc = subprocess.Popen(
            [sys.executable, "-c", script, cells_file, journal],
            stdout=subprocess.PIPE,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            env=env,
            text=True,
            start_new_session=True,
        )
        try:
            seen = 0
            for line in proc.stdout:
                if line.strip() == "CELL":
                    seen += 1
                    if seen >= 2:
                        break
                if line.strip() == "ALLDONE":
                    break
            # Kill the whole driver session (scheduler and workers).
            os.killpg(proc.pid, signal.SIGKILL)
        finally:
            proc.wait(timeout=30)
            proc.stdout.close()
        journaled = len(JobJournal(journal).completed_cells(len(cells)))
        assert journaled >= 1  # the kill left finished cells behind
        resumed = run_campaign(cells, n_workers=2, journal=journal)
        assert resumed.reports == uninterrupted.reports

    def test_torn_journal_entry_degrades_to_recompute(self, tmp_path):
        """A kill landing mid-write leaves a torn entry: it must read
        as a miss and the cell re-executes to the identical report."""
        cells = oracle_cells(3)
        journal = str(tmp_path / "journal")
        baseline = run_campaign(cells, journal=journal)
        # Truncate one journaled task entry in place.
        tasks_dir = tmp_path / "journal" / "tasks"
        entry = sorted(tasks_dir.glob("cal-*.pkl"))[0]
        entry.write_bytes(entry.read_bytes()[:7])
        resumed = run_campaign(cells, journal=journal)
        assert resumed.reports == baseline.reports

    def test_journal_bound_to_one_cell_list(self, tmp_path):
        journal = str(tmp_path / "journal")
        run_campaign(oracle_cells(2), journal=journal)
        with pytest.raises(JournalMismatch, match="different job"):
            run_campaign(oracle_cells(3), journal=journal)

    def test_replay_preserves_original_timings(self, tmp_path):
        cells = oracle_cells(2)
        journal = str(tmp_path / "journal")
        first = run_campaign(cells, journal=journal)
        handle = FoundryService().submit(
            CampaignJob(cells=tuple(cells), journal=journal)
        )
        replays = [e for e in handle.stream() if e.kind == "replay"]
        assert [e.seconds for e in replays] == first.cell_seconds
        assert handle.result().cell_seconds == first.cell_seconds

    def test_journal_keeps_calibrations_warm(self, tmp_path):
        """The journal bundles the calibration store: a resumed
        campaign must not recalibrate dies the killed run provisioned."""
        cells = [fleet_cells()[0], fleet_cells()[2]]  # two fabric dies
        journal = str(tmp_path / "journal")
        run_campaign(cells, n_workers=2, journal=journal)
        store = CalibrationStore(
            JobJournal(journal).calibration_store_path()
        )
        assert len(store.compute_events()) == 2
        # Re-running replays both cells; the store stays at 2 computes.
        run_campaign(cells, n_workers=2, journal=journal)
        assert len(store.compute_events()) == 2


class TestExperimentJob:
    def test_experiment_stream_matches_registry_order(self):
        handle = FoundryService().submit(
            ExperimentJob(names=("tab-keys", "tab-ovr"))
        )
        events = list(handle.stream())
        assert [e.label for e in events] == ["tab-keys", "tab-ovr"]
        results = handle.result()
        assert [r.experiment_id for r in results] == [
            e.payload.experiment_id for e in events
        ]
        assert handle.status() is JobStatus.COMPLETED
