"""Configuration-word (key) codec tests, including hypothesis roundtrips."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.receiver import FIELD_SPEC, KEY_BITS, ConfigWord, DigitalConfig


def test_register_map_spans_64_bits():
    assert KEY_BITS == 64
    assert sum(w for _, w in FIELD_SPEC) == 64


@given(st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_encode_decode_roundtrip(word):
    assert ConfigWord.decode(word).encode() == word


@given(st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_bits_roundtrip(word):
    cfg = ConfigWord.decode(word)
    assert ConfigWord.from_bits(cfg.to_bits()) == cfg


def test_field_out_of_range_rejected():
    with pytest.raises(ValueError):
        ConfigWord(lna_gain=16)
    with pytest.raises(ValueError):
        ConfigWord(cc_coarse=256)
    with pytest.raises(ValueError):
        ConfigWord(fb_en=2)


def test_non_integer_field_rejected():
    with pytest.raises(TypeError):
        ConfigWord(lna_gain=1.5)


def test_decode_out_of_range():
    with pytest.raises(ValueError):
        ConfigWord.decode(1 << 64)
    with pytest.raises(ValueError):
        ConfigWord.decode(-1)


def test_replace_changes_only_named_fields():
    a = ConfigWord(cc_coarse=10, gmin_code=20)
    b = a.replace(gmin_code=30)
    assert b.gmin_code == 30
    assert b.cc_coarse == 10
    assert a.gmin_code == 20  # immutable original


@given(st.sets(st.integers(min_value=0, max_value=63), min_size=1, max_size=8))
def test_flip_bits_involution(positions):
    cfg = ConfigWord(cc_coarse=42, cf_fine=99)
    flipped = cfg.flip_bits(list(positions))
    assert flipped.hamming_distance(cfg) == len(positions)
    assert flipped.flip_bits(list(positions)) == cfg


def test_flip_bits_accepts_numpy_ints():
    cfg = ConfigWord()
    out = cfg.flip_bits([np.int64(63)])
    assert out.hamming_distance(cfg) == 1


def test_flip_bits_out_of_range():
    with pytest.raises(ValueError):
        ConfigWord().flip_bits([64])


def test_field_bit_range_partition():
    spans = [ConfigWord.field_bit_range(name) for name, _ in FIELD_SPEC]
    assert spans[0][0] == 0
    for (lo1, hi1), (lo2, __) in zip(spans, spans[1:]):
        assert hi1 == lo2
    assert spans[-1][1] == 64
    with pytest.raises(KeyError):
        ConfigWord.field_bit_range("nonexistent")


def test_random_keys_differ(rng):
    keys = {ConfigWord.random(rng).encode() for _ in range(50)}
    assert len(keys) == 50


def test_random_covers_full_width(rng):
    # Over many draws every bit position should appear set at least once.
    seen = 0
    for _ in range(200):
        seen |= ConfigWord.random(rng).encode()
    assert seen == (1 << 64) - 1


def test_digital_config_range():
    DigitalConfig(standard_select=7)
    with pytest.raises(ValueError):
        DigitalConfig(standard_select=8)
