"""Shared fixtures: one lot of chips and one quick calibration, reused
across the suite so expensive work happens once per session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration import Calibrator
from repro.process import ChipFactory
from repro.receiver import Chip, STANDARDS


@pytest.fixture(scope="session")
def fab():
    """The reference manufacturing lot."""
    return ChipFactory(lot_seed=2020)


@pytest.fixture(scope="session")
def hero_chip(fab):
    """Die 0 of the reference lot (the paper's device under test)."""
    return Chip(variations=fab.draw(0))


@pytest.fixture(scope="session")
def second_chip(fab):
    """Another die, for cross-chip experiments."""
    return Chip(variations=fab.draw(1))


@pytest.fixture(scope="session")
def ref_standard():
    """The paper's demonstration point: F0 = 3 GHz."""
    return STANDARDS[0]


@pytest.fixture(scope="session")
def quick_calibration(hero_chip, ref_standard):
    """Fast calibration of the hero chip (short FFTs, one pass)."""
    calibrator = Calibrator(n_fft=4096, optimizer_passes=2, sfdr_weight=0.0)
    return calibrator.calibrate(hero_chip, ref_standard)


@pytest.fixture(scope="session")
def correct_key(quick_calibration):
    """The hero chip's secret key at the reference standard."""
    return quick_calibration.config


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(1234)
