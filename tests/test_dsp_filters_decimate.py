"""FIR design and decimation-chain tests, including the pinned-order
FIR exactness contract: the C kernel's ``repro_fir_batch`` and the
pure-NumPy transcription must be bit-identical to each other on every
shape, and both must agree with ``np.convolve`` numerically (bitwise
equality with np.convolve is NOT promised — its accumulation order is
a build-dependent BLAS dot, which is exactly why the pinned order
replaced it)."""

import numpy as np
import pytest

from repro.dsp import (
    CicDecimator,
    DecimationChain,
    FirDecimator,
    design_cic_compensator,
    design_halfband,
    design_lowpass,
    freq_response,
    fs4_mixer_sequences,
    periodogram,
    sine,
)
from repro.dsp.decimate import fir_same_pinned
from repro.dsp.tones import coherent_frequency
from repro.engine import kernel_available


class TestFirDesign:
    def test_lowpass_dc_gain_unity(self):
        taps = design_lowpass(63, 0.1, 1.0)
        assert np.sum(taps) == pytest.approx(1.0)

    def test_lowpass_passband_and_stopband(self):
        fs = 1.0
        taps = design_lowpass(101, 0.1, fs)
        h = np.abs(freq_response(taps, np.array([0.02, 0.3]), fs))
        assert h[0] == pytest.approx(1.0, abs=0.01)
        assert h[1] < 0.01

    def test_lowpass_guards(self):
        with pytest.raises(ValueError):
            design_lowpass(2, 0.1, 1.0)
        with pytest.raises(ValueError):
            design_lowpass(11, 0.6, 1.0)

    def test_halfband_alternate_zeros(self):
        taps = design_halfband(31)
        centre = 15
        for i in range(31):
            if i != centre and (i - centre) % 2 == 0:
                assert taps[i] == 0.0

    def test_halfband_length_guard(self):
        with pytest.raises(ValueError):
            design_halfband(30)

    def test_cic_compensator_flattens_droop(self):
        from repro.dsp.filters import _cic_droop

        taps = design_cic_compensator(33, cic_order=4, cic_rate=16)
        # The receiver band occupies only the bottom ~6% of the post-CIC
        # Nyquist range; require tight flatness there and reasonable
        # flatness across most of the design passband.
        freqs = np.linspace(0.01, 0.12, 12)
        comp = np.abs(freq_response(taps, freqs, 1.0))
        combined = comp * np.array([_cic_droop(f, 4, 16) for f in freqs])
        assert np.max(np.abs(20 * np.log10(combined))) < 0.5
        uncompensated = _cic_droop(0.12, 4, 16)
        assert abs(20 * np.log10(uncompensated)) > 0.5  # droop was real

    def test_compensator_odd_length_guard(self):
        with pytest.raises(ValueError):
            design_cic_compensator(32, 4, 16)


class TestCic:
    def test_dc_gain_normalised(self):
        cic = CicDecimator(rate=16, order=4)
        out = cic.process(np.ones(1024))
        assert out[-1] == pytest.approx(1.0, abs=1e-9)

    def test_decimation_length(self):
        cic = CicDecimator(rate=8, order=3)
        assert cic.process(np.zeros(800)).size == 100

    def test_raw_gain(self):
        assert CicDecimator(rate=16, order=4).gain == 16**4

    def test_guards(self):
        with pytest.raises(ValueError):
            CicDecimator(rate=1)
        with pytest.raises(ValueError):
            CicDecimator(rate=4, order=0)


class TestChain:
    def test_total_rate(self):
        chain = DecimationChain(osr=64, cic_rate=16)
        out = chain.process(np.zeros(64 * 100))
        assert out.size == pytest.approx(100, abs=1)

    def test_inband_tone_preserved(self):
        fs = 12e9
        chain = DecimationChain(osr=64)
        n = 64 * 512
        f = coherent_frequency(20e6, fs, n)
        out = chain.process(sine(n, fs, f, 1.0))
        spec = periodogram(out[32:], fs / 64)
        assert spec.tone_power(f) == pytest.approx(0.5, rel=0.15)

    def test_out_of_band_tone_suppressed(self):
        fs = 12e9
        chain = DecimationChain(osr=64)
        n = 64 * 512
        f = coherent_frequency(2e9, fs, n)
        out = chain.process(sine(n, fs, f, 1.0))
        assert float(np.mean(np.abs(out[64:]) ** 2)) < 1e-4

    def test_complex_stream(self):
        chain = DecimationChain(osr=64)
        out = chain.process(np.ones(6400) * (1 + 1j))
        assert np.iscomplexobj(out)

    def test_invalid_osr(self):
        with pytest.raises(ValueError):
            DecimationChain(osr=48, cic_rate=16)


def test_fs4_mixer_sequences():
    i, q = fs4_mixer_sequences(10)
    assert list(i[:4]) == [1.0, 0.0, -1.0, 0.0]
    assert list(q[:4]) == [0.0, -1.0, 0.0, 1.0]
    assert i.size == q.size == 10
    # I and Q are orthogonal.
    assert float(np.dot(i, q)) == 0.0


def test_fir_decimator_same_alignment():
    fir = FirDecimator(taps=np.array([0.25, 0.5, 0.25]), rate=2)
    out = fir.process(np.ones(64))
    assert out.size == 32
    assert out[5] == pytest.approx(1.0)


class TestMatrixEquivalence:
    """process_matrix must be bit-identical to process, row by row."""

    def rows(self, n_keys, n_samples, seed=0):
        rng = np.random.default_rng(seed)
        return rng.standard_normal((n_keys, n_samples))

    @pytest.mark.parametrize("shape", [(1, 512), (5, 512), (3, 500), (4, 333)])
    def test_cic_matrix_bit_identical(self, shape):
        cic = CicDecimator(rate=4, order=4)
        x = self.rows(*shape)
        out = cic.process_matrix(x)
        for row, got in zip(x, out):
            assert np.array_equal(cic.process(row), got)

    @pytest.mark.parametrize("shape", [(1, 256), (4, 255), (3, 77)])
    def test_fir_matrix_bit_identical(self, shape):
        fir = FirDecimator(taps=design_halfband(31), rate=2)
        x = self.rows(*shape)
        out = fir.process_matrix(x)
        for row, got in zip(x, out):
            assert np.array_equal(fir.process(row), got)

    @pytest.mark.parametrize(
        "shape",
        [
            (1, 64 * 32),       # one key
            (6, 64 * 32),       # plain batch
            (3, 64 * 32 + 17),  # record not a multiple of the OSR
            (2, 999),           # not a multiple of any stage rate
        ],
    )
    def test_chain_matrix_bit_identical(self, shape):
        chain = DecimationChain(osr=64)
        x = self.rows(*shape)
        out = chain.process_matrix(x)
        assert out.shape[0] == shape[0]
        for row, got in zip(x, out):
            assert np.array_equal(chain.process(row), got)

    def test_chain_matrix_complex(self):
        rng = np.random.default_rng(7)
        x = rng.standard_normal((3, 64 * 16)) + 1j * rng.standard_normal((3, 64 * 16))
        chain = DecimationChain(osr=64)
        out = chain.process_matrix(x)
        for row, got in zip(x, out):
            assert np.array_equal(chain.process(row), got)

    def test_empty_batch(self):
        chain = DecimationChain(osr=64)
        out = chain.process_matrix(np.empty((0, 64 * 16)))
        assert out.shape[0] == 0
        fir = FirDecimator(taps=design_halfband(31), rate=2)
        assert fir.process_matrix(np.empty((0, 128))).shape[0] == 0
        cic = CicDecimator(rate=4)
        assert cic.process_matrix(np.empty((0, 128))).shape[0] == 0

    def test_matrix_rejects_wrong_rank(self):
        chain = DecimationChain(osr=64)
        with pytest.raises(ValueError):
            chain.process_matrix(np.zeros(64 * 16))
        with pytest.raises(ValueError):
            FirDecimator(taps=design_halfband(31)).process_matrix(np.zeros(8))
        with pytest.raises(ValueError):
            CicDecimator(rate=4).process_matrix(np.zeros((2, 3, 4)))


#: Shapes covering the pinned-FIR branch structure: plain batches, rows
#: shorter than the taps (the out_n = max(n, m) branch), single-sample
#: rows, n == m, and row counts odd against the kernel's SIMD/thread
#: splits.
FIR_SHAPES = [
    (1, 256), (4, 255), (16, 512), (3, 77),
    (3, 7),    # taps longer than the sample row
    (5, 1),    # single-sample rows
    (2, 31),   # row length == tap count
    (7, 64),   # odd row count
]


class TestPinnedFir:
    """The pinned-order FIR primitive itself (module docstring)."""

    def rows(self, n_rows, n_samples, seed=0):
        rng = np.random.default_rng(seed)
        return rng.standard_normal((n_rows, n_samples))

    @pytest.mark.parametrize("shape", FIR_SHAPES)
    @pytest.mark.parametrize("n_taps", [31, 33])
    def test_matches_np_convolve_shape_and_values(self, shape, n_taps):
        """Same 'same' alignment and output shape as np.convolve, equal
        to a few ULPs (bitwise only the pinned order is promised)."""
        taps = (
            design_halfband(n_taps)
            if n_taps % 4 == 3
            else design_cic_compensator(n_taps, 4, 16)
        )
        x = self.rows(*shape)
        got = fir_same_pinned(x, taps)
        expected = np.stack(
            [np.convolve(row, taps, mode="same") for row in x]
        )
        assert got.shape == expected.shape
        np.testing.assert_allclose(got, expected, rtol=1e-12, atol=1e-15)

    @pytest.mark.skipif(
        not kernel_available(), reason="no C compiler: transcription only"
    )
    @pytest.mark.parametrize("shape", FIR_SHAPES)
    def test_kernel_bit_identical_to_transcription(self, shape):
        """C kernel == NumPy transcription, bit for bit, every shape."""
        from repro.engine.native import fir_batch_native

        taps = design_halfband(31)
        x = self.rows(*shape, seed=3)
        a = fir_same_pinned(x, taps)
        b = fir_batch_native(x, taps)
        assert np.array_equal(a, b)
        # Signed zeros too: the fs/4 mixer makes exact zeros routine.
        assert np.array_equal(np.signbit(a), np.signbit(b))

    @pytest.mark.skipif(
        not kernel_available(), reason="no C compiler: nothing to thread"
    )
    def test_kernel_thread_count_invariance(self, monkeypatch):
        from repro.engine.native import fir_batch_native

        taps = design_cic_compensator(33, 4, 16)
        x = self.rows(16, 512, seed=5)
        monkeypatch.setenv("REPRO_ENGINE_THREADS", "1")
        one = fir_batch_native(x, taps)
        monkeypatch.setenv("REPRO_ENGINE_THREADS", "4")
        four = fir_batch_native(x, taps)
        assert np.array_equal(one, four)

    def test_exact_zero_runs_keep_signed_zero_semantics(self):
        """Zero-padded and exactly-zero terms are accumulated, never
        skipped — mixer-style zero lattices must round-trip both
        implementations identically."""
        taps = design_halfband(31)
        x = np.zeros((2, 64))
        x[:, ::2] = self.rows(2, 32, seed=9)
        a = fir_same_pinned(x, taps)
        if kernel_available():
            from repro.engine.native import fir_batch_native

            b = fir_batch_native(x, taps)
            assert np.array_equal(a, b)
            assert np.array_equal(np.signbit(a), np.signbit(b))

    def test_empty_batch_and_empty_rows(self):
        taps = design_halfband(31)
        out = fir_same_pinned(np.empty((0, 128)), taps)
        assert out.shape == (0, 128)
        # Taps dominate the empty batch's output length too.
        assert fir_same_pinned(np.empty((0, 7)), taps).shape == (0, 31)
        with pytest.raises(ValueError):
            fir_same_pinned(np.empty((2, 0)), taps)
        with pytest.raises(ValueError):
            fir_same_pinned(np.zeros((2, 8)), np.empty(0))

    def test_taps_longer_than_row_through_decimator(self):
        """FirDecimator end to end on the out_n = max(n, m) branch."""
        fir = FirDecimator(taps=design_halfband(31), rate=2)
        x = self.rows(3, 7, seed=11)
        out = fir.process_matrix(x)
        assert out.shape == (3, 16)  # 31-long 'same' output, rate 2
        for row, got in zip(x, out):
            assert np.array_equal(fir.process(row), got)
