"""Baseline locking schemes: each locks/unlocks its own testbench."""

import numpy as np
import pytest

from repro.baselines import (
    BiasObfuscationLock,
    CalibrationLoopLock,
    CurrentMirrorLock,
    MemristorBiasLock,
    MixLock,
    NeuralBiasLock,
    TinyMlp,
)

ALL_BASELINES = [
    MemristorBiasLock,
    BiasObfuscationLock,
    CurrentMirrorLock,
    MixLock,
    CalibrationLoopLock,
    NeuralBiasLock,
]


@pytest.mark.parametrize("scheme_cls", ALL_BASELINES)
def test_correct_key_unlocks(scheme_cls):
    scheme = scheme_cls()
    assert scheme.unlocks(scheme.correct_key)


@pytest.mark.parametrize("scheme_cls", ALL_BASELINES)
def test_random_keys_mostly_fail(scheme_cls, rng):
    scheme = scheme_cls()
    assert scheme.lock_effectiveness(16, rng) >= 0.7


@pytest.mark.parametrize("scheme_cls", ALL_BASELINES)
def test_profiles_declare_added_circuitry(scheme_cls):
    profile = scheme_cls().profile
    assert profile.added_circuitry
    assert profile.key_bits > 0
    assert profile.area_overhead_pct > 0 or profile.power_overhead_pct > 0


class TestMemristor:
    def test_bias_voltage_depends_on_key(self):
        scheme = MemristorBiasLock()
        v_ok = scheme.bias_voltage(scheme.correct_key)
        v_bad = scheme.bias_voltage(scheme.correct_key ^ 0xFF)
        assert abs(v_ok - v_bad) > scheme.tolerance

    def test_key_range_guard(self):
        with pytest.raises(ValueError):
            MemristorBiasLock().bias_voltage(1 << 8)


class TestBiasObfuscation:
    def test_aggregate_width_drives_current(self):
        scheme = BiasObfuscationLock()
        i_zero = scheme.branch_current(0)
        i_full = scheme.branch_current((1 << 8) - 1)
        assert i_zero == 0.0
        assert i_full > scheme.branch_current(scheme.correct_key)

    def test_equivalent_width_keys_also_unlock(self):
        # Any segment combination with the same aggregate width is
        # functionally correct — the scheme's key space collapses to
        # width classes (a known weakness).
        scheme = BiasObfuscationLock()
        widths = scheme._width(scheme.correct_key)
        for key in range(1 << 8):
            if scheme._width(key) == widths:
                assert scheme.unlocks(key)


class TestCurrentMirror:
    def test_output_current_scales_with_legs(self):
        scheme = CurrentMirrorLock()
        assert scheme.output_current(0b000001) < scheme.output_current(0b011111)

    def test_correct_ratio(self):
        scheme = CurrentMirrorLock()
        i = scheme.output_current(scheme.correct_key)
        # ~12x the 50 uA reference, modulo channel-length modulation.
        assert i == pytest.approx(12 * 50e-6, rel=0.15)


class TestMixLockBaseline:
    def test_wrong_key_breaks_controller(self):
        scheme = MixLock(n_key_bits=8)
        assert not scheme.unlocks(scheme.correct_key ^ 0b1)

    def test_sat_attack_breaks_it(self):
        scheme = MixLock(n_key_bits=6)
        result = scheme.run_sat_attack()
        assert scheme.unlocks(result.key)
        assert result.n_oracle_queries < 32


class TestCalibrationLock:
    def test_sar_converges_with_correct_key(self):
        scheme = CalibrationLoopLock()
        assert scheme._run_sar(scheme.correct_key) == scheme.target_code

    def test_single_bit_key_errors_usually_diverge(self):
        # Some key gates sit on nets unused by a particular trajectory,
        # so not every flip matters — but most single-bit errors must
        # derail the SAR search.
        scheme = CalibrationLoopLock()
        diverged = sum(
            scheme._run_sar(scheme.correct_key ^ (1 << i)) != scheme.target_code
            for i in range(scheme.n_key_bits)
        )
        assert diverged >= scheme.n_key_bits // 2

    def test_target_code_guard(self):
        with pytest.raises(ValueError):
            CalibrationLoopLock(target_code=64)


class TestNeuralBias:
    def test_training_converged(self):
        # Global loss includes the unlearnable random decoy corpus; what
        # must be small is the error at the secret point, checked below.
        scheme = NeuralBiasLock()
        assert scheme.training_loss < 0.2

    def test_secret_voltages_produce_biases(self):
        scheme = NeuralBiasLock()
        produced = scheme.biases_for_levels(scheme.secret_levels)
        assert np.allclose(produced, scheme.bias_targets, atol=scheme.tolerance)

    def test_neighbouring_levels_fail(self):
        scheme = NeuralBiasLock()
        wrong = list(scheme.secret_levels)
        wrong[0] = (wrong[0] + 3) % 16
        word = 0
        for i, lv in enumerate(wrong):
            word |= lv << (i * 4)
        assert not scheme.unlocks(word)


class TestTinyMlp:
    def test_learns_linear_map(self, rng):
        net = TinyMlp(n_in=2, n_hidden=16, n_out=1, seed=1)
        x = rng.uniform(-1, 1, (64, 2))
        y = (0.5 * x[:, :1] - 0.25 * x[:, 1:]) * 0.8
        loss = net.train(x, y, epochs=1500, learning_rate=0.1)
        assert loss < 1e-3

    def test_forward_shape(self):
        net = TinyMlp(n_in=3, n_hidden=4, n_out=2, seed=0)
        assert net.forward(np.zeros(3)).shape == (1, 2)
