"""SNR/SFDR/THD metric tests on synthetic signals with known answers."""

import numpy as np
import pytest

from repro.dsp import (
    SNR_FLOOR_DB,
    band_snr,
    enob,
    periodogram,
    sine,
    snr_from_samples,
    thd,
    two_tone,
    two_tone_sfdr,
)
from repro.dsp.tones import coherent_frequency

FS = 1e6
N = 8192


def test_snr_matches_theory(rng):
    f = coherent_frequency(100e3, FS, N)
    sigma = 0.01
    x = sine(N, FS, f, 1.0) + rng.normal(0, sigma, N)
    m = snr_from_samples(x, FS, f, 50e3, 150e3)
    # In-band noise = sigma^2 * band/(fs/2); signal = 0.5.
    theory = 10 * np.log10(0.5 / (sigma**2 * 100e3 / (FS / 2)))
    assert m.snr_db == pytest.approx(theory, abs=1.0)


def test_snr_counts_inband_harmonics_as_noise(rng):
    # A second in-band tone must degrade the reported SNR (SNDR-style),
    # matching the paper's usage.
    f = coherent_frequency(100e3, FS, N)
    f_spur = coherent_frequency(120e3, FS, N)
    x = sine(N, FS, f, 1.0) + sine(N, FS, f_spur, 0.1) + rng.normal(0, 1e-4, N)
    m = snr_from_samples(x, FS, f, 50e3, 150e3)
    assert m.snr_db == pytest.approx(10 * np.log10(0.5 / 0.005), abs=0.5)


def test_dead_signal_reports_floor():
    x = np.zeros(N)
    m = snr_from_samples(x, FS, 100e3, 50e3, 150e3)
    assert m.snr_db == SNR_FLOOR_DB


def test_noiseless_signal_reports_ceiling():
    f = coherent_frequency(100e3, FS, N)
    m = snr_from_samples(sine(N, FS, f, 1.0), FS, f, 99e3, 101e3)
    assert m.snr_db > 100.0


def test_band_snr_empty_band_rejected():
    spec = periodogram(np.ones(N), FS)
    with pytest.raises(ValueError):
        band_snr(spec, 100e3, 2e6, 3e6)


class TestSfdr:
    def test_known_im3(self, rng):
        f1 = coherent_frequency(100e3, FS, N)
        f2 = coherent_frequency(110e3, FS, N)
        f_im3 = 2 * f1 - f2
        x = (
            two_tone(N, FS, f1, f2, 1.0)
            + sine(N, FS, f_im3, 0.01)
            + rng.normal(0, 1e-5, N)
        )
        m = two_tone_sfdr(periodogram(x, FS), f1, f2, 50e3, 150e3)
        # IM3 at -40 dBc is the dominant spur.
        assert m.sfdr_db == pytest.approx(40.0, abs=1.0)
        assert m.im3_db == pytest.approx(40.0, abs=1.0)
        assert abs(m.worst_spur_frequency - f_im3) < 2 * FS / N

    def test_clean_two_tone_high_sfdr(self, rng):
        f1 = coherent_frequency(100e3, FS, N)
        f2 = coherent_frequency(110e3, FS, N)
        x = two_tone(N, FS, f1, f2, 1.0) + rng.normal(0, 1e-5, N)
        m = two_tone_sfdr(periodogram(x, FS), f1, f2, 50e3, 150e3)
        assert m.sfdr_db > 55.0

    def test_fundamental_shoulders_not_counted_as_spurs(self):
        # Closely spaced coherent tones: the Hann main-lobe shoulders of
        # each fundamental must not appear as spurs (regression test for
        # the short-FFT SFDR bug).
        n = 2048
        f1 = coherent_frequency(100e3, FS, n)
        f2 = f1 + 4 * FS / n  # 4 bins away
        x = two_tone(n, FS, f1, f2, 1.0)
        m = two_tone_sfdr(periodogram(x, FS), f1, f2, 50e3, 150e3, search_bins=1)
        assert m.sfdr_db > 35.0


def test_thd_of_clipped_sine(rng):
    f = coherent_frequency(50e3, FS, N)
    clean = sine(N, FS, f, 1.0)
    clipped = np.clip(clean, -0.8, 0.8)
    assert thd(periodogram(clipped, FS), f) > thd(periodogram(clean, FS), f)


def test_enob_definition():
    assert enob(1.76 + 6.02 * 12) == pytest.approx(12.0)
