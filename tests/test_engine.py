"""Batched simulation engine: backend bit-exactness, batching/grouping,
mixed-chip batches, engine-owned caches (the cross-process store and
its concurrency semantics included), request validation and the runner
registry."""

import multiprocessing
import time

import numpy as np
import pytest

from repro.engine import (
    BACKENDS,
    BoundedCache,
    CalibrationStore,
    ModulatorRequest,
    ReceiverRequest,
    SimulationEngine,
    get_default_engine,
    kernel_available,
    kernel_max_threads,
    kernel_simd_lanes,
    kernel_simd_width,
    kernel_threaded,
    kernel_threads,
    set_default_backend,
)
from repro.receiver import (
    Chip,
    ConfigWord,
    STANDARDS,
    ToneStimulus,
    oscillation_config,
    stimulus_frequency,
)

STD = STANDARDS[0]
N = 256


@pytest.fixture(scope="module")
def chip():
    return Chip()


def _stim():
    return ToneStimulus.single(stimulus_frequency(STD, 64, N), -25.0)


def _mixed_mode_requests(rng):
    """Clocked, buffer-mode, open-loop, oscillation and random keys —
    every loop-topology branch of the integrator, across seeds."""
    base = ConfigWord(
        lna_gain=7, cc_coarse=10, cf_fine=128, gmq_code=20, gmin_code=24,
        preamp_code=20, comp_code=31, dac_code=32, delay_code=12,
        buffer_code=4,
    )
    configs = [
        base,  # clocked, loop closed
        base.replace(comp_clk_en=0),  # buffer mode, loop closed
        base.replace(fb_en=0),  # clocked, loop open
        base.replace(comp_clk_en=0, fb_en=0),  # fully open buffer
        oscillation_config(base),  # free-running tank
        base.replace(dither_en=1, chop_en=1, delay_code=3),  # aux paths
        ConfigWord.random(rng),
        ConfigWord.random(rng),
        ConfigWord.random(rng),
    ]
    stim = _stim()
    return [
        ModulatorRequest(
            config=config,
            stimulus=ToneStimulus.off() if i == 4 else stim,
            fs=STD.fs,
            n_samples=N,
            seed=i,
            initial_state=(1e-3, 0.0) if i == 4 else (0.0, 0.0),
        )
        for i, config in enumerate(configs)
    ]


class TestBitExactness:
    def test_vectorized_matches_reference_on_mixed_batch(self, chip, rng):
        requests = _mixed_mode_requests(rng)
        ref = SimulationEngine(backend="reference").run(chip, requests)
        vec = SimulationEngine(backend="vectorized").run(chip, requests)
        for i, (a, b) in enumerate(zip(ref, vec)):
            assert np.array_equal(a.output, b.output), f"output differs at {i}"
            assert np.array_equal(a.bits, b.bits), f"bits differ at {i}"
            assert np.array_equal(
                a.tank_voltage, b.tank_voltage
            ), f"tank_voltage differs at {i}"
            assert a.is_bitstream == b.is_bitstream
            assert a.fs == b.fs

    def test_batch_composition_does_not_change_results(self, chip, rng):
        """A key simulated alone equals the same key inside a batch."""
        requests = _mixed_mode_requests(rng)
        engine = SimulationEngine(backend="vectorized")
        batch = engine.run(chip, requests)
        for request, batched in zip(requests[:4], batch[:4]):
            alone = engine.run(chip, [request])[0]
            assert np.array_equal(alone.output, batched.output)

    def test_chip_entry_point_matches_engine(self, chip):
        """Chip.simulate_modulator goes through the engine unchanged."""
        config = ConfigWord()
        direct = chip.simulate_modulator(config, _stim(), STD.fs, n_samples=N, seed=3)
        via_engine = SimulationEngine(backend="reference").run_one(
            chip,
            ModulatorRequest(
                config=config, stimulus=_stim(), fs=STD.fs, n_samples=N, seed=3
            ),
        )
        assert np.array_equal(direct.output, via_engine.output)

    def test_receiver_chain_matches_across_backends(self, chip):
        request = ReceiverRequest(
            config=ConfigWord(), stimulus=_stim(), fs=STD.fs, n_baseband=16
        )
        ref = SimulationEngine(backend="reference").run_receiver_one(chip, request)
        vec = SimulationEngine(backend="vectorized").run_receiver_one(chip, request)
        assert np.array_equal(ref.baseband, vec.baseband)
        assert ref.fs_out == vec.fs_out


class TestBatching:
    def test_results_in_request_order_across_time_grids(self, chip):
        """Mixed record lengths are grouped yet returned in order."""
        stim = _stim()
        requests = [
            ModulatorRequest(
                config=ConfigWord(), stimulus=stim, fs=STD.fs,
                n_samples=128 if i % 2 else 64, seed=i,
            )
            for i in range(6)
        ]
        results = SimulationEngine(backend="reference").run(chip, requests)
        for request, result in zip(requests, results):
            assert result.output.size == request.n_samples

    def test_stats_count_requests_and_batches(self, chip):
        engine = SimulationEngine(backend="reference")
        stim = _stim()
        engine.run(
            chip,
            [
                ModulatorRequest(
                    config=ConfigWord(), stimulus=stim, fs=STD.fs,
                    n_samples=64, seed=i,
                )
                for i in range(5)
            ],
        )
        assert engine.stats.n_requests == 5
        assert engine.stats.n_batches == 1
        assert engine.stats.n_reference_runs == 5
        assert engine.stats.n_vectorized_runs == 0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            SimulationEngine(backend="cuda")
        with pytest.raises(ValueError):
            set_default_backend("cuda")
        assert get_default_engine().backend in BACKENDS


class TestRequestValidation:
    def test_modulator_request_guards(self):
        with pytest.raises(ValueError):
            ModulatorRequest(
                config=ConfigWord(), stimulus=_stim(), fs=STD.fs, n_samples=0
            )
        with pytest.raises(ValueError):
            ModulatorRequest(
                config=ConfigWord(), stimulus=_stim(), fs=STD.fs,
                n_samples=16, substeps=1,
            )

    @pytest.mark.parametrize("n_baseband", [0, -5])
    def test_receiver_request_rejects_bad_n_baseband(self, n_baseband):
        with pytest.raises(ValueError, match="n_baseband"):
            ReceiverRequest(
                config=ConfigWord(), stimulus=_stim(), fs=STD.fs,
                n_baseband=n_baseband,
            )

    @pytest.mark.parametrize("n_baseband", [0, -1])
    def test_simulate_receiver_rejects_bad_n_baseband(self, chip, n_baseband):
        """Regression: this used to fail deep inside the decimator."""
        with pytest.raises(ValueError, match="n_baseband"):
            chip.simulate_receiver(
                ConfigWord(), _stim(), STD.fs, n_baseband=n_baseband
            )


class TestBoundedCache:
    def test_eviction_is_lru(self):
        cache = BoundedCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b"
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2

    def test_get_or_set_computes_once(self):
        cache = BoundedCache(maxsize=4)
        calls = []
        for _ in range(3):
            value = cache.get_or_set("k", lambda: calls.append(1) or 42)
            assert value == 42
        assert len(calls) == 1
        assert cache.hits == 2
        assert cache.misses == 1

    def test_bad_maxsize_rejected(self):
        with pytest.raises(ValueError):
            BoundedCache(maxsize=0)


class TestEngineCaches:
    def test_calibration_cache_bounded_and_clearable(self, chip):
        engine = SimulationEngine(calibration_cache_size=2)
        calls = []

        def factory_for(tag):
            def factory():
                calls.append(tag)
                return tag

            return factory

        std0, std1, std2 = STANDARDS[0], STANDARDS[1], STANDARDS[2]
        assert engine.calibrated(chip, std0, factory_for("a")) == "a"
        assert engine.calibrated(chip, std0, factory_for("a2")) == "a"  # hit
        assert engine.calibrated(chip, std1, factory_for("b")) == "b"
        assert engine.calibrated(chip, std2, factory_for("c")) == "c"  # evicts std0
        assert engine.calibrated(chip, std0, factory_for("a3")) == "a3"
        assert calls == ["a", "b", "c", "a3"]
        engine.clear_caches()
        assert len(engine.calibration_cache) == 0
        assert engine.stats.n_requests == 0

    def test_experiments_calibrated_uses_engine_cache(self):
        from repro.experiments.common import calibrated, clear_caches, hero_chip

        engine = get_default_engine()
        clear_caches()
        chip = hero_chip()
        first = calibrated(chip, STANDARDS[0])
        assert len(engine.calibration_cache) == 1
        assert calibrated(hero_chip(), STANDARDS[0]) is first  # same die -> hit
        clear_caches()
        assert len(engine.calibration_cache) == 0


class TestRunnerRegistry:
    def test_all_artefacts_registered(self):
        from repro.experiments.runner import REGISTRY

        assert list(REGISTRY) == [
            "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
            "tab-attack", "tab-keys", "tab-ovr", "sweep-std",
            "sat-na", "opt-attack",
        ]

    def test_duplicate_registration_rejected(self):
        from repro.experiments.runner import REGISTRY, register

        with pytest.raises(ValueError):
            register(next(iter(REGISTRY.values())))

    def test_unknown_name_rejected(self):
        from repro.experiments.runner import run_all

        with pytest.raises(KeyError):
            run_all(names=["fig99"])


class TestKernelThreading:
    """The kernel's key axis: thread-count invariance and env plumbing."""

    @pytest.mark.skipif(
        not kernel_available(), reason="no C compiler: nothing to thread"
    )
    def test_thread_count_invariance(self, chip, rng, monkeypatch):
        """1-vs-N threads must be bit-identical over every loop mode."""
        requests = _mixed_mode_requests(rng)
        monkeypatch.setenv("REPRO_ENGINE_THREADS", "1")
        one = SimulationEngine(backend="vectorized").run(chip, requests)
        monkeypatch.setenv("REPRO_ENGINE_THREADS", "4")
        four = SimulationEngine(backend="vectorized").run(chip, requests)
        for a, b in zip(one, four):
            assert np.array_equal(a.output, b.output)
            assert np.array_equal(a.bits, b.bits)
            assert np.array_equal(a.tank_voltage, b.tank_voltage)

    def test_kernel_threads_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE_THREADS", raising=False)
        assert kernel_threads() == 0  # one thread per core
        monkeypatch.setenv("REPRO_ENGINE_THREADS", "3")
        assert kernel_threads() == 3
        for bad in ("0", "-2", "many", "1.5", " "):
            monkeypatch.setenv("REPRO_ENGINE_THREADS", bad)
            if bad.strip() == "":
                assert kernel_threads() == 0
            else:
                with pytest.raises(ValueError, match="REPRO_ENGINE_THREADS"):
                    kernel_threads()

    def test_disable_kernel_env(self, monkeypatch):
        """REPRO_ENGINE_DISABLE_KERNEL forces the reference fallback."""
        monkeypatch.setenv("REPRO_ENGINE_DISABLE_KERNEL", "1")
        assert not kernel_available()
        assert not kernel_threaded()

    @pytest.mark.skipif(
        not kernel_available(), reason="no C compiler: fallback is the norm"
    )
    def test_disabled_kernel_still_bit_identical(self, chip, rng, monkeypatch):
        """The vectorized backend with the kernel disabled must run the
        reference loop per key and produce identical results."""
        requests = _mixed_mode_requests(rng)[:3]
        native_results = SimulationEngine(backend="vectorized").run(chip, requests)
        monkeypatch.setenv("REPRO_ENGINE_DISABLE_KERNEL", "1")
        fallback = SimulationEngine(backend="vectorized").run(chip, requests)
        for a, b in zip(native_results, fallback):
            assert np.array_equal(a.output, b.output)


    @pytest.mark.skipif(
        not kernel_available(), reason="no C compiler: nothing to thread"
    )
    @pytest.mark.skipif(
        "fork" not in __import__("multiprocessing").get_all_start_methods(),
        reason="platform cannot fork",
    )
    def test_fork_after_threaded_batch_is_safe(self, chip, rng, monkeypatch):
        """Forked workers must be able to use the threaded kernel after
        the parent has — the reason the kernel threads with per-call
        pthread teams instead of OpenMP, whose runtime deadlocks in
        forked children.  Regression for the campaign worker pools."""
        import multiprocessing

        monkeypatch.setenv("REPRO_ENGINE_THREADS", "4")
        requests = _mixed_mode_requests(rng)[:4]
        parent = SimulationEngine(backend="vectorized").run(chip, requests)
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(2) as pool:
            sums = pool.map(_threaded_child_checksums, [requests] * 2)
        expected = [float(r.output.sum()) for r in parent]
        assert sums[0] == expected and sums[1] == expected


    @pytest.mark.skipif(
        not kernel_available(), reason="no C compiler: nothing to clamp"
    )
    def test_many_threads_requested_is_clamped_not_broken(
        self, chip, rng, monkeypatch
    ):
        """Requests far beyond the kernel's worker-team bound must be
        clamped up front (never silently truncated mid-spawn) and stay
        bit-identical to the sequential walk."""
        assert kernel_max_threads() == 65
        requests = _mixed_mode_requests(rng)[:4]
        monkeypatch.setenv("REPRO_ENGINE_THREADS", "1")
        one = SimulationEngine(backend="vectorized").run(chip, requests)
        monkeypatch.setenv("REPRO_ENGINE_THREADS", "10000")
        many = SimulationEngine(backend="vectorized").run(chip, requests)
        for a, b in zip(one, many):
            assert np.array_equal(a.output, b.output)
            assert np.array_equal(a.bits, b.bits)
            assert np.array_equal(a.tank_voltage, b.tank_voltage)


def _uniform_mode_requests(rng, n_keys):
    """One loop topology, per-key data varying — consecutive keys are
    lane-packable, so the SIMD path actually engages (mode changes and
    remainders fall back to the scalar walk)."""
    base = ConfigWord(
        lna_gain=7, cc_coarse=10, cf_fine=128, gmq_code=20, gmin_code=24,
        preamp_code=20, comp_code=31, dac_code=32, delay_code=12,
        buffer_code=4,
    )
    stim = _stim()
    return [
        ModulatorRequest(
            config=base.replace(
                dac_code=int(rng.integers(1, 63)),
                gmq_code=int(rng.integers(1, 40)),
            ),
            stimulus=stim, fs=STD.fs, n_samples=N, seed=k,
        )
        for k in range(n_keys)
    ]


class TestKernelSimd:
    """The kernel's SIMD lane axis: width invariance and env plumbing.

    Lane width is pure throughput policy — per-lane arithmetic keeps
    the reference operand order and tanh is the scalar libm call per
    lane — so every width must reproduce the reference backend bit for
    bit, across thread counts and key counts that do not divide the
    lane width (remainders and mode changes take the scalar walk).
    """

    WIDTHS = ("0", "1", "2", "4", "auto")

    def _run_all_widths(self, chip, requests, monkeypatch):
        results = {}
        for width in self.WIDTHS:
            monkeypatch.setenv("REPRO_ENGINE_SIMD", width)
            results[width] = SimulationEngine(backend="vectorized").run(
                chip, requests
            )
        return results

    @pytest.mark.skipif(
        not kernel_available(), reason="no C compiler: no lane path to test"
    )
    @pytest.mark.parametrize("threads", ["1", "4"])
    def test_lane_width_invariance_mixed_modes(
        self, chip, rng, monkeypatch, threads
    ):
        """Every width x thread count equals the reference backend on a
        batch covering every loop topology."""
        requests = _mixed_mode_requests(rng)
        ref = SimulationEngine(backend="reference").run(chip, requests)
        monkeypatch.setenv("REPRO_ENGINE_THREADS", threads)
        for width, out in self._run_all_widths(
            chip, requests, monkeypatch
        ).items():
            for i, (a, b) in enumerate(zip(ref, out)):
                tag = f"SIMD={width}, threads={threads}, key {i}"
                assert np.array_equal(a.output, b.output), tag
                assert np.array_equal(a.bits, b.bits), tag
                assert np.array_equal(a.tank_voltage, b.tank_voltage), tag

    @pytest.mark.skipif(
        not kernel_available(), reason="no C compiler: no lane path to test"
    )
    @pytest.mark.parametrize("n_keys", [1, 2, 3, 5, 7, 9])
    def test_lane_width_invariance_odd_key_counts(
        self, chip, rng, monkeypatch, n_keys
    ):
        """Key counts that do not divide the lane width: full packs run
        the lane path, stragglers the scalar walk, results identical."""
        requests = _uniform_mode_requests(rng, n_keys)
        monkeypatch.setenv("REPRO_ENGINE_THREADS", "1")
        results = self._run_all_widths(chip, requests, monkeypatch)
        for width in self.WIDTHS[1:]:
            for a, b in zip(results["0"], results[width]):
                assert np.array_equal(a.output, b.output), f"SIMD={width}"
                assert np.array_equal(a.tank_voltage, b.tank_voltage)

    def test_kernel_simd_lanes_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE_SIMD", raising=False)
        assert kernel_simd_lanes() == -1  # auto-detect in the kernel
        for raw, expected in (
            ("auto", -1), ("", -1), ("0", 0), ("1", 0), ("2", 2), ("4", 4),
        ):
            monkeypatch.setenv("REPRO_ENGINE_SIMD", raw)
            assert kernel_simd_lanes() == expected
        for bad in ("3", "8", "-1", "wide", "2.0"):
            monkeypatch.setenv("REPRO_ENGINE_SIMD", bad)
            with pytest.raises(ValueError, match="REPRO_ENGINE_SIMD"):
                kernel_simd_lanes()

    def test_kernel_simd_width_reports_sane_value(self, monkeypatch):
        assert kernel_simd_width() in (0, 2, 4)
        monkeypatch.setenv("REPRO_ENGINE_DISABLE_KERNEL", "1")
        assert kernel_simd_width() == 0
        assert kernel_max_threads() == 1


def _threaded_child_checksums(requests):
    """Pool target for the fork-safety test (module-level: picklable)."""
    results = SimulationEngine(backend="vectorized").run(Chip(), requests)
    return [float(r.output.sum()) for r in results]


class TestEnvBackendValidation:
    def test_env_backend_accepts_valid_names(self, monkeypatch):
        from repro.engine.engine import _resolve_env_backend

        for name in BACKENDS:
            monkeypatch.setenv("REPRO_ENGINE_BACKEND", name)
            assert _resolve_env_backend() == name
        monkeypatch.delenv("REPRO_ENGINE_BACKEND", raising=False)
        assert _resolve_env_backend() == "auto"

    def test_env_backend_rejects_unknown_with_choices(self, monkeypatch):
        from repro.engine.engine import _resolve_env_backend

        monkeypatch.setenv("REPRO_ENGINE_BACKEND", "vectorised")
        with pytest.raises(ValueError) as err:
            _resolve_env_backend()
        message = str(err.value)
        assert "REPRO_ENGINE_BACKEND" in message
        for name in BACKENDS:
            assert name in message

    def test_set_default_backend_rejects_with_choices(self):
        with pytest.raises(ValueError) as err:
            set_default_backend("gpu")
        message = str(err.value)
        for name in BACKENDS:
            assert name in message


class TestCalibrationStore:
    def test_roundtrip_and_audit(self, tmp_path):
        store = CalibrationStore(tmp_path / "store")
        assert store.get((2020, 0, 0)) is None
        store.put((2020, 0, 0), {"snr": 61.5})
        assert store.get((2020, 0, 0)) == {"snr": 61.5}
        assert len(store) == 1
        assert len(store.compute_events()) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = CalibrationStore(tmp_path)
        store.put((1, 2, 3), "value")
        entry = next(store.path.glob("cal-*.pkl"))
        entry.write_bytes(b"torn write")
        assert store.get((1, 2, 3)) is None

    def test_get_or_set_computes_once_across_instances(self, tmp_path):
        calls = []
        first = CalibrationStore(tmp_path)
        second = CalibrationStore(tmp_path)  # another process's handle
        for store in (first, second):
            value = store.get_or_set((9, 9), lambda: calls.append(1) or "v")
            assert value == "v"
        assert len(calls) == 1

    def test_clear_empties_store(self, tmp_path):
        store = CalibrationStore(tmp_path)
        store.put((1,), "a")
        store.clear()
        assert len(store) == 0
        assert store.compute_events() == []

    def test_put_many_bulk_write_with_tagged_audit(self, tmp_path):
        store = CalibrationStore(tmp_path)
        store.put_many([((1,), "a"), ((2,), "b")], event="fleet")
        assert store.get((1,)) == "a"
        assert store.get((2,)) == "b"
        events = store.compute_events()
        assert len(events) == 2
        assert all(event.endswith(" fleet") for event in events)

    def test_engine_reads_through_store(self, tmp_path, chip):
        store_path = tmp_path / "shared"
        calls = []

        def factory():
            calls.append(1)
            return "calibration"

        for _ in range(2):  # two engines = two simulated processes
            engine = SimulationEngine(
                calibration_store=CalibrationStore(store_path)
            )
            value = engine.calibrated(
                chip, STD, factory=factory, key=(2020, 0, STD.index)
            )
            assert value == "calibration"
        assert len(calls) == 1

    def test_clear_caches_clears_attached_store(self, tmp_path, chip):
        engine = SimulationEngine(calibration_store=CalibrationStore(tmp_path))
        engine.calibrated(chip, STD, factory=lambda: "v", key=(0, 0))
        assert len(engine.calibration_store) == 1
        engine.clear_caches()
        assert len(engine.calibration_store) == 0


class TestMixedChipBatches:
    """run_multi: requests of different dies fuse into one batch."""

    def _chips(self):
        from repro.process import ChipFactory

        fab = ChipFactory(lot_seed=2020)
        return [Chip(variations=fab.draw(die)) for die in range(3)]

    def test_run_multi_matches_per_chip_runs(self, rng):
        chips = self._chips()
        engine = SimulationEngine()
        per_chip = {
            id(chip): [
                ModulatorRequest(
                    config=config, stimulus=_stim(), fs=STD.fs, n_samples=N,
                    seed=seed,
                )
                for seed, config in enumerate(
                    [ConfigWord.random(rng), ConfigWord.random(rng)]
                )
            ]
            for chip in chips
        }
        # Interleave the dies' requests, round-robin.
        items = [
            (chip, per_chip[id(chip)][position])
            for position in range(2)
            for chip in chips
        ]
        fused = engine.run_multi(items)
        assert engine.stats.n_batches == 1  # one time grid -> one batch
        for die, chip in enumerate(chips):
            alone = SimulationEngine().run(chip, per_chip[id(chip)])
            for position in range(2):
                fused_result = fused[position * len(chips) + die]
                np.testing.assert_array_equal(
                    fused_result.output, alone[position].output
                )
                np.testing.assert_array_equal(
                    fused_result.bits, alone[position].bits
                )

    def test_run_multi_mixed_time_grids(self, rng):
        chips = self._chips()[:2]
        engine = SimulationEngine()
        items = [
            (chips[0], ModulatorRequest(
                config=ConfigWord.random(rng), stimulus=_stim(), fs=STD.fs,
                n_samples=N,
            )),
            (chips[1], ModulatorRequest(
                config=ConfigWord.random(rng), stimulus=_stim(), fs=STD.fs,
                n_samples=N // 2,
            )),
            (chips[1], ModulatorRequest(
                config=ConfigWord.random(rng), stimulus=_stim(), fs=STD.fs,
                n_samples=N,
            )),
        ]
        results = engine.run_multi(items)
        assert engine.stats.n_batches == 2  # grouped by (n_samples, substeps)
        assert [r.output.size for r in results] == [N, N // 2, N]
        for (chip, request), fused in zip(items, results):
            alone = SimulationEngine().run_one(chip, request)
            np.testing.assert_array_equal(fused.output, alone.output)

    def test_run_is_single_chip_run_multi(self, chip, rng):
        requests = [
            ModulatorRequest(
                config=ConfigWord.random(rng), stimulus=_stim(), fs=STD.fs,
                n_samples=N,
            )
            for _ in range(3)
        ]
        via_run = SimulationEngine().run(chip, requests)
        via_multi = SimulationEngine().run_multi(
            [(chip, request) for request in requests]
        )
        for a, b in zip(via_run, via_multi):
            np.testing.assert_array_equal(a.output, b.output)


def _race_factory():
    # Slow enough that both racers are inside get_or_set together.
    time.sleep(0.4)
    return {"value": "deterministic-calibration"}


def _race_worker(path, barrier, queue):
    store = CalibrationStore(path, poll_interval=0.01)
    barrier.wait()
    queue.put(store.get_or_set((2020, 7, 0), _race_factory))


class TestCalibrationStoreConcurrency:
    """Two processes provisioning the same triple race cleanly."""

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="needs fork to run the race without import gymnastics",
    )
    def test_same_triple_race_computes_once(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        queue = ctx.Queue()
        workers = [
            ctx.Process(
                target=_race_worker, args=(str(tmp_path), barrier, queue)
            )
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        values = [queue.get(timeout=30) for _ in workers]
        for worker in workers:
            worker.join(timeout=30)
        # Both racers got the identical value...
        assert values[0] == values[1] == {"value": "deterministic-calibration"}
        store = CalibrationStore(tmp_path)
        assert values[0] == store.get((2020, 7, 0))
        # ...from ONE compute: the loser waited on the winner's lock.
        assert len(store.compute_events()) == 1
        assert len(store) == 1
        # No lock debris survives the race.
        assert list(store.path.glob("cal-*.lock")) == []

    def test_truncated_entry_recomputed_not_crashed(self, tmp_path):
        store = CalibrationStore(tmp_path)
        store.put((5, 5, 5), {"snr": 60.0, "payload": list(range(64))})
        entry = next(store.path.glob("cal-*.pkl"))
        entry.write_bytes(entry.read_bytes()[: entry.stat().st_size // 2])
        calls = []

        def factory():
            calls.append(1)
            return {"snr": 60.0, "payload": list(range(64))}

        value = store.get_or_set((5, 5, 5), factory)
        assert value == {"snr": 60.0, "payload": list(range(64))}
        assert calls == [1]  # recomputed, quietly, exactly once
        # The recompute repaired the entry for later readers.
        assert CalibrationStore(tmp_path).get((5, 5, 5)) == value

    def test_stale_lock_never_deadlocks(self, tmp_path):
        store = CalibrationStore(tmp_path, lock_timeout=0.2, poll_interval=0.01)
        key = (1, 2, 3)
        store._lock(key).touch()  # a crashed holder's leftover
        assert store.get_or_set(key, lambda: "computed") == "computed"
        # The takeover removed the debris: the next miss on this key
        # (entry corrupted or deleted) must not wait the timeout again.
        assert not store._lock(key).exists()

    def test_failing_factory_releases_the_lock(self, tmp_path):
        store = CalibrationStore(tmp_path)
        key = (4, 4, 4)
        with pytest.raises(ValueError):
            store.get_or_set(key, self._boom)
        assert list(store.path.glob("cal-*.lock")) == []
        assert store.get_or_set(key, lambda: "second-try") == "second-try"

    @staticmethod
    def _boom():
        raise ValueError("factory failed")

