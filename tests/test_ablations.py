"""Ablation tests: the reproduction's design choices are load-bearing."""

import pytest

from repro.experiments import ablations


class TestSubstepsConvergence:
    def test_default_sits_on_plateau(self):
        result = ablations.substeps_convergence(n_fft=2048)
        snr = {row[0]: row[1] for row in result.rows}
        # From 4 substeps up the integrator is converged (within the
        # measurement-noise wiggle of a short record).
        assert abs(snr[4] - snr[8]) < 2.0
        assert abs(snr[6] - snr[8]) < 2.0


class TestLogicThresholdAblation:
    def test_mechanism_isolated(self):
        result = ablations.logic_threshold_ablation(n_baseband=128)
        by_threshold = {row[0]: row for row in result.rows}
        # Correct key indifferent to the threshold.
        correct = [row[1] for row in result.rows]
        assert max(correct) - min(correct) < 1.0
        # Deceptive key survives a 0 V slicer, dies at 0.4 V.
        assert by_threshold[0.0][2] > by_threshold[0.4][2] + 10.0


class TestHysteresisAblation:
    def test_tail_suppressed_not_correct_key(self):
        result = ablations.hysteresis_ablation(n_keys=10, n_fft=2048)
        low, high = result.rows
        assert high[2] <= low[2]  # fewer deceptive-tail keys
        assert high[1] > 38.0  # correct key still functional


class TestOsrScaling:
    def test_snr_monotone_in_osr(self):
        result = ablations.osr_scaling(n_fft=4096)
        snrs = [row[2] for row in result.rows]
        assert all(b > a for a, b in zip(snrs, snrs[1:]))
        # More than flat-noise 3 dB/octave on average.
        assert (snrs[-1] - snrs[0]) / 3.0 > 4.0


def test_run_quick_returns_all():
    results = ablations.run(quick=True)
    assert [r.experiment_id for r in results] == [
        "abl-substeps",
        "abl-threshold",
        "abl-hysteresis",
        "abl-osr",
    ]
