"""Gateway tests: token-bucket rate limits (typed, un-advanced
refusals), rendezvous routing, the gateway differential guard (a
campaign through the gateway is bit-identical to direct-daemon and
in-process runs), stream/cancel/attach proxy semantics, typed failover
of a killed backend (PENDING re-routes, RUNNING strands behind
BackendDown and resumes bit-identically on restart), the JSON-only
HTTP facade, and the ``jobs``/``ping`` CLI verbs."""

import json
import os
import pickle
import signal
import socket as socket_module
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
import uuid
from types import SimpleNamespace

import pytest

from repro import faults
from repro.campaigns import CampaignCell, ThreatScenario
from repro.service import (
    BackendDown,
    CampaignJob,
    DaemonClient,
    DaemonUnavailable,
    FoundryDaemon,
    FoundryGateway,
    FoundryHTTPFrontend,
    FoundryService,
    JobCancelled,
    JobStatus,
    RateLimited,
    TenantConfig,
    TenantMeter,
    TokenBucket,
    parse_tenant_spec,
    rendezvous_backend,
)
from repro.service.protocol import encode_payload, recv_frame, send_frame

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def oracle_cells(n: int = 4, budget: int = 6, seed: int = 5) -> tuple:
    """Cheap oracle-only cells (no calibration in the loop)."""
    base = ThreatScenario(budget=budget, n_fft=1024, seed=seed)
    return tuple(
        CampaignCell("brute-force", base.with_(seed=s)) for s in range(n)
    )


def short_socket() -> str:
    """A socket path short enough for AF_UNIX (pytest tmp_path is not)."""
    return os.path.join(
        tempfile.gettempdir(), f"repro-{uuid.uuid4().hex[:10]}.sock"
    )


def report_bytes(reports) -> list:
    """Per-report pickle bytes — the byte-for-byte identity the guards
    compare (see tests/test_daemon.py for why per-report)."""
    return [pickle.dumps(pickle.loads(pickle.dumps(r))) for r in reports]


class FakeClock:
    """Injectable monotonic clock for deterministic bucket tests."""

    def __init__(self, t: float = 0.0):
        self.t = float(t)

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# ---------------------------------------------------------------------------
# Token buckets and rate-limited meters
# ---------------------------------------------------------------------------


class TestTokenBucket:
    def test_parse_tenant_spec_rate_fields(self):
        assert parse_tenant_spec("acme=5:200:30:600") == TenantConfig(
            "acme", priority=5, max_queries=200,
            max_submits_per_minute=30.0, max_queries_per_minute=600.0,
        )
        # Empty fields keep their defaults.
        assert parse_tenant_spec("acme=::30") == TenantConfig(
            "acme", max_submits_per_minute=30.0
        )
        assert parse_tenant_spec("acme=:::600") == TenantConfig(
            "acme", max_queries_per_minute=600.0
        )
        with pytest.raises(ValueError, match="malformed"):
            parse_tenant_spec("acme=1:2:3:4:5")
        with pytest.raises(ValueError, match="must be > 0"):
            TenantConfig("acme", max_submits_per_minute=0)

    def test_take_refuses_typed_and_unadvanced(self, tmp_path):
        clock = FakeClock()
        bucket = TokenBucket(tmp_path / "t.submits", 60.0, tenant="t",
                             kind="submission", clock=clock)
        assert bucket.level() == 60.0  # fresh bucket starts full
        bucket.take(60.0)
        assert bucket.level() == 0.0
        state = bucket.path.read_text()
        with pytest.raises(RateLimited) as err:
            bucket.take(1.0)
        # Typed, names the limit, un-advanced: the state file is
        # byte-identical and retry_after covers the refill exactly.
        assert "rate limit" in str(err.value)
        assert err.value.retry_after == pytest.approx(1.0)
        assert bucket.path.read_text() == state
        clock.advance(30.0)  # refill at 1 token/s
        assert bucket.level() == pytest.approx(30.0)
        bucket.take(30.0)
        with pytest.raises(ValueError, match="negative"):
            bucket.take(-1.0)

    def test_refund_caps_at_capacity(self, tmp_path):
        clock = FakeClock()
        bucket = TokenBucket(tmp_path / "t.submits", 10.0, clock=clock)
        bucket.take(4.0)
        bucket.refund(100.0)
        assert bucket.level() == 10.0
        bucket.refund(-1.0)  # no-op, never raises
        assert bucket.level() == 10.0

    def test_torn_state_file_reads_as_full(self, tmp_path):
        clock = FakeClock()
        bucket = TokenBucket(tmp_path / "t.submits", 10.0, clock=clock)
        bucket.take(10.0)
        bucket.path.write_text("garbage")  # a torn write forfeits debits
        assert bucket.level() == 10.0


class TestMeterRateLimits:
    def test_rate_refusal_leaves_meter_and_bucket_unadvanced(self, tmp_path):
        clock = FakeClock()
        meter = TenantMeter(tmp_path / "m.count", max_queries=1000,
                            tenant="t", max_per_minute=60.0, clock=clock)
        meter.charge_batch(60)
        assert meter.n_queries() == 60
        assert meter.bucket.level() == 0.0
        with pytest.raises(RateLimited) as err:
            meter.charge_batch(5)
        assert err.value.retry_after == pytest.approx(5.0)
        # Quota count AND bucket both un-advanced: the chunk can retry
        # after retry_after having consumed nothing.
        assert meter.n_queries() == 60
        assert meter.bucket.level() == 0.0
        clock.advance(5.0)
        meter.charge_batch(5)
        assert meter.n_queries() == 65

    def test_quota_checked_before_bucket(self, tmp_path):
        from repro.attacks.oracle import QueryBudgetExceeded

        clock = FakeClock()
        meter = TenantMeter(tmp_path / "m.count", max_queries=10,
                            tenant="t", max_per_minute=600.0, clock=clock)
        with pytest.raises(QueryBudgetExceeded, match="quota"):
            meter.charge_batch(11)
        assert meter.bucket.level() == 600.0  # quota refusal spent no tokens

    def test_rollback_refunds_rate_tokens(self, tmp_path):
        clock = FakeClock()
        meter = TenantMeter(tmp_path / "m.count", max_queries=None,
                            tenant="t", max_per_minute=60.0, clock=clock)
        meter.begin_task("task-1")
        meter.charge_batch(40)
        assert meter.bucket.level() == pytest.approx(20.0)
        assert meter.rollback_task("task-1") == 40
        # The reclaimed task's charges come back to both records, so a
        # retry debits them again without double-draining.
        assert meter.n_queries() == 0
        assert meter.bucket.level() == pytest.approx(60.0)
        assert meter.rollback_task("task-1") == 0  # idempotent


# ---------------------------------------------------------------------------
# Rendezvous routing
# ---------------------------------------------------------------------------


class TestRendezvous:
    def test_order_independent_and_deterministic(self):
        backends = ["/tmp/a.sock", "/tmp/b.sock", "/tmp/c.sock"]
        for jid in ("j1", "j2", "abc123"):
            pick = rendezvous_backend(jid, backends)
            assert pick in backends
            assert rendezvous_backend(jid, list(reversed(backends))) == pick
            assert rendezvous_backend(jid, backends) == pick  # stable

    def test_removal_remaps_only_the_dead_backends_jobs(self):
        backends = ["/tmp/a.sock", "/tmp/b.sock", "/tmp/c.sock"]
        ids = [f"job-{i}" for i in range(200)]
        owner = {jid: rendezvous_backend(jid, backends) for jid in ids}
        assert set(owner.values()) == set(backends)  # all three used
        dead = "/tmp/b.sock"
        survivors = [b for b in backends if b != dead]
        for jid in ids:
            after = rendezvous_backend(jid, survivors)
            if owner[jid] != dead:
                assert after == owner[jid]  # unaffected jobs stay put
            else:
                assert after in survivors

    def test_no_backends_is_typed(self):
        with pytest.raises(DaemonUnavailable, match="no live backends"):
            rendezvous_backend("j", [])


# ---------------------------------------------------------------------------
# Submission-rate limits over the wire
# ---------------------------------------------------------------------------


@pytest.fixture
def daemon_factory(tmp_path):
    started = []

    def factory(tag="d", root=None, **kwargs):
        kwargs.setdefault("n_workers", 2)
        daemon = FoundryDaemon(
            root if root is not None else tmp_path / tag,
            socket=short_socket(), **kwargs,
        )
        daemon.start()
        started.append(daemon)
        return daemon

    yield factory
    for daemon in started:
        daemon.stop()


class TestSubmitRateOverWire:
    def test_daemon_refuses_typed_and_persists_nothing(self, daemon_factory):
        daemon = daemon_factory(
            "rate",
            tenants=[TenantConfig("acme", max_submits_per_minute=2.0)],
        )
        daemon.clock = FakeClock()
        client = DaemonClient(socket=daemon.address, tenant="acme")
        first = client.submit(CampaignJob(cells=oracle_cells(1), n_workers=1))
        client.submit(CampaignJob(cells=oracle_cells(2), n_workers=1))
        refused = CampaignJob(cells=oracle_cells(3), n_workers=1)
        with pytest.raises(RateLimited, match="rate limit"):
            client.submit(refused)
        # The refusal admitted nothing: the daemon knows two jobs, and
        # the shared bucket was not advanced by the refused attempt.
        assert len(client.jobs()["jobs"]) == 2
        bucket = daemon.submit_bucket(daemon.tenant("acme"))
        assert bucket.level() == 0.0
        # Attaching to a live identical job is free even when the
        # bucket is empty.
        again = client.submit(CampaignJob(cells=oracle_cells(1), n_workers=1))
        assert again.job_id == first.job_id
        # Refill admits the refused job.
        daemon.clock.advance(30.0)
        client.submit(refused).result(timeout=600)
        first.result(timeout=600)

    def test_unlimited_tenant_never_rate_refused(self, daemon_factory):
        daemon = daemon_factory("free")
        client = DaemonClient(socket=daemon.address, tenant="free")
        handles = [
            client.submit(CampaignJob(cells=oracle_cells(1, seed=s),
                                      n_workers=1))
            for s in range(5)
        ]
        for handle in handles:
            handle.result(timeout=600)


# ---------------------------------------------------------------------------
# The gateway: proxying, differential guard, failover
# ---------------------------------------------------------------------------


@pytest.fixture
def cluster(tmp_path):
    """Two named daemons sharing one root, fronted by a gateway."""
    root = tmp_path / "shared"
    daemons = []
    for tag in ("a", "b"):
        daemon = FoundryDaemon(root, socket=short_socket(), n_workers=2,
                               name=tag)
        daemon.start()
        daemons.append(daemon)
    gateway = FoundryGateway(
        root, backends=[d.address for d in daemons],
        socket=short_socket(), health_interval=0.2,
    )
    gateway.start()
    yield SimpleNamespace(
        root=root, daemons=daemons, gateway=gateway,
        client=DaemonClient(socket=gateway.address),
    )
    gateway.stop()
    for daemon in daemons:
        daemon.stop()


class TestGatewayProxy:
    def test_campaign_bitidentical_via_gateway(self, cluster, daemon_factory):
        """The acceptance property: a campaign through the gateway is
        byte-identical to a direct-daemon run and the in-process
        service, per backend, across worker counts."""
        cells = oracle_cells(4)
        direct = daemon_factory("direct", n_workers=4)
        direct_client = DaemonClient(socket=direct.address)
        for backend in ("reference", "vectorized"):
            reference = FoundryService().submit(
                CampaignJob(cells=cells, n_workers=1, backend=backend)
            ).result()
            expected = report_bytes(reference.reports)
            for n_workers in (1, 2, 4):
                job = CampaignJob(cells=cells, n_workers=n_workers,
                                  backend=backend)
                via_gateway = cluster.client.submit(job).result(timeout=600)
                assert report_bytes(via_gateway.reports) == expected
            job = CampaignJob(cells=cells, n_workers=2, backend=backend)
            via_daemon = direct_client.submit(job).result(timeout=600)
            assert report_bytes(via_daemon.reports) == expected

    def test_identical_submission_attaches_to_same_backend(self, cluster):
        job_text = encode_payload(
            CampaignJob(cells=oracle_cells(2), n_workers=1)
        )
        first = cluster.client._request(
            {"op": "submit", "tenant": "default", "job": job_text}
        )
        second = cluster.client._request(
            {"op": "submit", "tenant": "default", "job": job_text}
        )
        assert first["job_id"] == second["job_id"]
        assert first["backend"] == second["backend"]  # rendezvous agrees
        assert second["attached"] is True
        cluster.client.handle(first["job_id"]).result(timeout=600)

    def test_jobs_span_backends_and_ping_aggregates(self, cluster):
        addrs = [d.address for d in cluster.daemons]
        # Force one job onto each backend by picking ids whose
        # rendezvous ranking differs.
        ids = {}
        i = 0
        while len(ids) < 2:
            jid = f"spread-{i}"
            ids.setdefault(rendezvous_backend(jid, addrs), jid)
            i += 1
        handles = [
            cluster.client.submit(
                CampaignJob(cells=oracle_cells(1, seed=n), n_workers=1),
                job_id=jid,
            )
            for n, jid in enumerate(ids.values())
        ]
        for handle in handles:
            handle.result(timeout=600)
        jobs = cluster.client.jobs()["jobs"]
        assert {jobs[jid]["backend"] for jid in ids.values()} == set(addrs)
        info = cluster.client.ping()
        assert info["gateway"] is True
        assert info["name"] == "gateway"
        assert info["workers"] == 4  # 2 + 2, aggregated
        assert sorted(info["backends"]) == sorted(addrs)
        assert all(b["alive"] for b in info["backends"].values())

    def test_cancel_and_resume_replay_via_gateway(self, cluster):
        handle = cluster.client.submit(
            CampaignJob(cells=oracle_cells(6, budget=12), n_workers=1)
        )
        delivered = 0
        for _ in handle.stream():
            delivered += 1
            if delivered == 2:
                assert handle.cancel() is True
        assert 2 <= delivered < 6
        assert handle.status() is JobStatus.CANCELLED
        with pytest.raises(JobCancelled):
            handle.result()
        # Resubmitting through the gateway resumes from the journal on
        # the same backend: replay events for the finished cells.
        resumed = cluster.client.submit(
            CampaignJob(cells=oracle_cells(6, budget=12), n_workers=1)
        )
        kinds = [event.kind for event in resumed.stream()]
        assert kinds.count("replay") >= 2
        assert resumed.status() is JobStatus.COMPLETED

    def test_stream_resumes_through_torn_relay_frames(self, cluster):
        """Frame faults tear connections on both hops (client-gateway
        and gateway-backend); either tear must engage the client's
        reconnect/buffer-replay, never its error path."""
        handle = cluster.client.submit(
            CampaignJob(cells=oracle_cells(4), n_workers=1)
        )
        handle.result(timeout=600)
        baseline = list(handle.stream())
        assert len(baseline) == 4
        standing = faults.active()  # restore any suite-wide chaos plan
        faults.install(
            faults.parse_spec("frame.truncate:every=7;frame.drop:at=3")
        )
        try:
            streamed = list(
                cluster.client.handle(handle.job_id).stream()
            )
        finally:
            faults.install(standing)
        assert streamed == baseline

    def test_single_torn_frame_does_not_fail_over(self, cluster):
        """One torn gateway->backend frame (here: the first health
        ping's) must NOT read as a dead backend — failover strands
        RUNNING jobs, which is reserved for daemons that are really
        gone.  The round-trip retry absorbs it."""
        handle = cluster.client.submit(
            CampaignJob(cells=oracle_cells(2), n_workers=1)
        )
        handle.result(timeout=600)
        standing = faults.active()  # restore any suite-wide chaos plan
        faults.install(faults.parse_spec("frame.truncate:at=1"))
        try:
            cluster.gateway._health_tick()
        finally:
            faults.install(standing)
        assert all(
            cluster.gateway._alive[addr]
            for addr in cluster.gateway.backends
        )
        record = cluster.gateway._records[handle.job_id]
        assert record.stranded is False
        assert handle.status() is JobStatus.COMPLETED

    def test_unknown_job_is_typed(self, cluster):
        with pytest.raises(KeyError, match="unknown job"):
            cluster.client.handle("nope").status()

    def test_raw_protocol_robustness(self, cluster):
        from repro.service.protocol import connect

        sock = connect(cluster.gateway.address, timeout=10)
        try:
            sock.settimeout(10)
            send_frame(sock, {"op": "frobnicate"})
            reply = recv_frame(sock)
            assert reply["ok"] is False
            assert "unknown op" in reply["error"]
            send_frame(sock, {"op": "ping"})
            assert recv_frame(sock)["ok"] is True
        finally:
            sock.close()


class TestGatewayRateLimits:
    def test_gateway_debits_once_and_relays_typed_refusal(self, tmp_path):
        root = tmp_path / "shared"
        clock = FakeClock()
        config = TenantConfig("acme", max_submits_per_minute=2.0)
        daemon = FoundryDaemon(root, socket=short_socket(), n_workers=1,
                               tenants=[config], name="a")
        daemon.clock = clock
        daemon.start()
        gateway = FoundryGateway(root, backends=[daemon.address],
                                 socket=short_socket(), tenants=[config],
                                 health_interval=0.5)
        gateway.clock = clock
        gateway.start()
        try:
            client = DaemonClient(socket=gateway.address, tenant="acme")
            handle = client.submit(
                CampaignJob(cells=oracle_cells(1), n_workers=1)
            )
            # Gateway and backend share one bucket file; the forward is
            # rate-exempt, so one submission cost exactly one token.
            bucket = TokenBucket(root / "tenants" / "acme.submits", 2.0,
                                 clock=clock)
            assert bucket.level() == pytest.approx(1.0)
            client.submit(CampaignJob(cells=oracle_cells(2), n_workers=1))
            with pytest.raises(RateLimited, match="rate limit"):
                client.submit(
                    CampaignJob(cells=oracle_cells(3), n_workers=1)
                )
            assert bucket.level() == pytest.approx(0.0)  # un-advanced
            handle.result(timeout=600)
        finally:
            gateway.stop()
            daemon.stop()


# ---------------------------------------------------------------------------
# Failover: kill one of two backends mid-batch
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestGatewayFailover:
    def _serve(self, root, socket_path, name, env, extra=()):
        # Its own session so a SIGKILL of the group also reaps any
        # SIGSTOPped (hung-fault) fleet worker the daemon leaves behind.
        return subprocess.Popen(
            [sys.executable, "-m", "repro.service", "serve",
             "--root", str(root), "--socket", socket_path,
             "--name", name, *extra],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            cwd=REPO_ROOT, env=env, text=True, start_new_session=True,
        )

    def _killpg(self, proc):
        try:
            os.killpg(proc.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        proc.wait(timeout=60)
        if proc.stdout is not None and not proc.stdout.closed:
            proc.stdout.close()

    def _wait(self, predicate, timeout=60.0, message="condition"):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return
            time.sleep(0.1)
        raise AssertionError(f"timed out waiting for {message}")

    def _wait_listening(self, client, proc, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                raise AssertionError(
                    f"daemon exited early:\n{proc.stdout.read()}"
                )
            try:
                client.ping()
                return
            except OSError:
                time.sleep(0.1)
        raise AssertionError("daemon never started listening")

    def test_killed_backend_loses_no_job(self, tmp_path):
        """Kill one of two backends mid-batch: its PENDING job re-routes
        to the survivor and completes bit-identically; its RUNNING job
        strands behind a typed BackendDown — never a silent re-run —
        and resumes bit-identically when the backend restarts."""
        hang_cells = oracle_cells(3, budget=24)
        pend_cells = oracle_cells(2, budget=6, seed=9)
        ref_hang = FoundryService().submit(
            CampaignJob(cells=hang_cells, n_workers=1)
        ).result()
        ref_pend = FoundryService().submit(
            CampaignJob(cells=pend_cells, n_workers=1)
        ).result()

        root = tmp_path / "shared"
        sock_a, sock_b = short_socket(), short_socket()
        env = dict(os.environ)
        inherited = env.get("PYTHONPATH")
        env["PYTHONPATH"] = "src" + (
            os.pathsep + inherited if inherited else ""
        )
        env.pop("REPRO_FAULTS", None)
        env.pop("REPRO_TASK_TIMEOUT", None)
        # Backend b: one worker whose 2nd task freezes (no watchdog),
        # pinning its first job RUNNING, and max_active=1 so its second
        # job stays PENDING — the two failover classes, deterministic.
        env_b = dict(env)
        env_b["REPRO_FAULTS"] = "task.hang:at=2"
        proc_a = self._serve(root, sock_a, "a", env,
                             extra=("--workers", "2"))
        proc_b = self._serve(root, sock_b, "b", env_b,
                             extra=("--workers", "1", "--max-active", "1"))
        gateway = FoundryGateway(root, backends=[sock_a, sock_b],
                                 socket=short_socket(), health_interval=0.2)
        restarted = None
        try:
            self._wait_listening(DaemonClient(socket=sock_a), proc_a)
            self._wait_listening(DaemonClient(socket=sock_b), proc_b)
            gateway.start()
            client = DaemonClient(socket=gateway.address)

            # Job ids that rendezvous onto backend b specifically.
            def routed_to_b(prefix):
                i = 0
                while True:
                    jid = f"{prefix}-{i}"
                    if rendezvous_backend(jid, [sock_a, sock_b]) == sock_b:
                        return jid
                    i += 1

            jid_hang = routed_to_b("hang")
            jid_pend = routed_to_b("pend")
            hang = client.submit(
                CampaignJob(cells=hang_cells, n_workers=1), job_id=jid_hang
            )
            self._wait(
                lambda: hang.status() is JobStatus.RUNNING
                and client._request(
                    {"op": "status", "job_id": jid_hang}
                )["n_events"] >= 1,
                message="first task to land on backend b",
            )
            pend = client.submit(
                CampaignJob(cells=pend_cells, n_workers=1), job_id=jid_pend
            )
            assert pend.status() is JobStatus.PENDING
            # Let a health tick record the statuses that decide
            # re-route-vs-strand, then kill b without ceremony.
            self._wait(
                lambda: cluster_status(client, jid_hang) == "running"
                and cluster_status(client, jid_pend) == "pending",
                message="gateway to observe both jobs",
            )
            self._killpg(proc_b)
            # Failover runs inside the next health tick: wait for the
            # routing table to settle (PENDING job on the survivor, the
            # RUNNING one stranded) before querying through it.
            self._wait(
                lambda: (
                    client.jobs()["jobs"].get(jid_pend, {}).get("backend")
                    == sock_a
                    and client.jobs()["jobs"].get(jid_hang, {}).get(
                        "stranded"
                    ) is True
                ),
                message="failover to re-route and strand",
            )

            # The PENDING job re-routed to the survivor and completes
            # bit-identically (same journal root, nothing recomputes).
            result_pend = pend.result(timeout=600)
            assert report_bytes(result_pend.reports) == report_bytes(
                ref_pend.reports
            )

            # The RUNNING job is stranded behind a typed error — its
            # partial work is journaled, never silently re-run.
            with pytest.raises(BackendDown, match="journaled"):
                hang.status()

            # Restart b (no fault plan): it recovers its own journaled
            # job, resumes it, and the gateway routes to it again.
            restarted = self._serve(root, sock_b, "b", env,
                                    extra=("--workers", "1"))
            self._wait_listening(DaemonClient(socket=sock_b), restarted)
            self._wait(
                lambda: gateway._alive.get(sock_b, False),
                message="gateway to mark backend b up",
            )
            result_hang = hang.result(timeout=600)
            assert report_bytes(result_hang.reports) == report_bytes(
                ref_hang.reports
            )
            events = list(hang.stream())
            assert len(events) == len(hang_cells)
            assert sum(1 for e in events if e.kind == "replay") >= 1
        finally:
            gateway.stop()
            self._killpg(proc_a)
            if restarted is not None:
                self._killpg(restarted)
            if proc_b.poll() is None:
                self._killpg(proc_b)


def cluster_status(client, job_id):
    jobs = client.jobs()["jobs"]
    return jobs.get(job_id, {}).get("status")


# ---------------------------------------------------------------------------
# The JSON-only HTTP facade
# ---------------------------------------------------------------------------


def http_request(address, method, path, body=None, headers=()):
    """One HTTP round trip; returns (status, parsed JSON body)."""
    request = urllib.request.Request(
        f"http://{address}{path}", method=method,
        data=None if body is None else json.dumps(body).encode(),
        headers={"Content-Type": "application/json", **dict(headers)},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


CAMPAIGN_JSON = {
    "type": "campaign",
    "n_workers": 1,
    "cells": [
        {"attack": "brute-force",
         "scenario": {"budget": 6, "n_fft": 1024, "seed": s}}
        for s in range(2)
    ],
}


@pytest.fixture
def frontend(cluster):
    front = FoundryHTTPFrontend(backend=cluster.gateway.address,
                                max_wait=120.0)
    front.start()
    yield SimpleNamespace(address=front.address, cluster=cluster)
    front.stop()


class TestHTTPFacade:
    def test_submit_poll_result_matches_direct_run(self, frontend):
        from repro.campaigns.serialization import attack_report_to_dict

        status, reply = http_request(
            frontend.address, "POST", "/v1/jobs", {"job": CAMPAIGN_JSON}
        )
        assert status == 202
        job_id = reply["job_id"]
        assert reply["status_url"] == f"/v1/jobs/{job_id}"
        status, result = http_request(
            frontend.address, "GET",
            f"/v1/jobs/{job_id}/result?timeout=115",
        )
        assert status == 200 and result["status"] == "completed"
        # The reports payload is byte-comparable across transports:
        # identical JSON to serializing an in-process run directly.
        cells = tuple(
            CampaignCell(
                "brute-force",
                ThreatScenario(budget=6, n_fft=1024, seed=s),
            )
            for s in range(2)
        )
        reference = FoundryService().submit(
            CampaignJob(cells=cells, n_workers=1)
        ).result()
        assert json.dumps(
            result["result"]["reports"], sort_keys=True
        ) == json.dumps(
            [attack_report_to_dict(r) for r in reference.reports],
            sort_keys=True,
        )
        # The HTTP submission derived the same job id a frame-protocol
        # submission of the logical job would: the frame client attaches.
        attach = frontend.cluster.client.submit(
            CampaignJob(cells=cells, n_workers=1)
        )
        assert attach.job_id == job_id

    def test_events_poll_is_bounded(self, frontend):
        status, reply = http_request(
            frontend.address, "POST", "/v1/jobs", {"job": CAMPAIGN_JSON}
        )
        job_id = reply["job_id"]
        http_request(
            frontend.address, "GET",
            f"/v1/jobs/{job_id}/result?timeout=115",
        )
        status, page = http_request(
            frontend.address, "GET", f"/v1/jobs/{job_id}/events?start=0"
        )
        assert status == 200
        assert len(page["events"]) == 2
        assert page["next"] == 2
        assert {e["kind"] for e in page["events"]} <= {"cell", "replay"}
        assert all("payload" in e for e in page["events"])
        status, rest = http_request(
            frontend.address, "GET",
            f"/v1/jobs/{job_id}/events?start={page['next']}",
        )
        assert status == 200 and rest["events"] == []

    def test_schema_refusals_are_400(self, frontend):
        cases = [
            ({"job": {"type": "campaign", "cells": []}}, "non-empty"),
            ({"job": {"type": "warfare"}}, "job.type"),
            ({"job": {"type": "campaign",
                      "cells": [{"attack": "zero-day"}]}}, "unknown"),
            ({"job": {"type": "campaign", "journal": "/etc/passwd",
                      "cells": [{"attack": "brute-force"}]}},
             "server-side"),
            ({"job": {"type": "campaign",
                      "cells": [{"attack": "brute-force",
                                 "scenario": {"scheme": "nope"}}]}},
             "scheme"),
            ({"job": {"type": "campaign",
                      "cells": [{"attack": "brute-force",
                                 "attack_params": {"x": [1, 2]}}]}},
             "scalar"),
            ({"job": CAMPAIGN_JSON, "surprise": 1}, "unknown field"),
        ]
        for body, needle in cases:
            status, reply = http_request(
                frontend.address, "POST", "/v1/jobs", body
            )
            assert status == 400, (body, reply)
            assert reply["kind"] == "SchemaError"
            assert needle in reply["error"]

    def test_unknown_job_and_route_are_404(self, frontend):
        status, reply = http_request(frontend.address, "GET", "/v1/jobs/nope")
        assert status == 404
        status, reply = http_request(frontend.address, "GET", "/v2/everything")
        assert status == 404 and reply["kind"] == "NotFound"

    def test_tenant_header_scopes_job_ids(self, frontend):
        body = {"job": CAMPAIGN_JSON}
        _, anon = http_request(frontend.address, "POST", "/v1/jobs", body)
        _, acme = http_request(
            frontend.address, "POST", "/v1/jobs", body,
            headers={"X-Repro-Tenant": "acme"},
        )
        assert anon["job_id"] != acme["job_id"]
        for reply in (anon, acme):
            http_request(
                frontend.address, "GET",
                f"/v1/jobs/{reply['job_id']}/result?timeout=115",
            )

    def test_cancel_endpoint(self, frontend):
        _, reply = http_request(
            frontend.address, "POST", "/v1/jobs", {"job": CAMPAIGN_JSON}
        )
        job_id = reply["job_id"]
        http_request(
            frontend.address, "GET", f"/v1/jobs/{job_id}/result?timeout=115"
        )
        status, reply = http_request(
            frontend.address, "POST", f"/v1/jobs/{job_id}/cancel"
        )
        assert status == 200
        assert reply["cancelled"] is False  # already terminal

    def test_rate_limited_submission_is_429(self, tmp_path):
        clock = FakeClock()
        daemon = FoundryDaemon(
            tmp_path / "r429", socket=short_socket(), n_workers=1,
            tenants=[TenantConfig("acme", max_submits_per_minute=1.0)],
        )
        daemon.clock = clock
        daemon.start()
        front = FoundryHTTPFrontend(backend=daemon.address, tenant="acme")
        front.start()
        try:
            status, first = http_request(
                front.address, "POST", "/v1/jobs", {"job": CAMPAIGN_JSON}
            )
            assert status == 202
            refused = dict(
                CAMPAIGN_JSON,
                cells=[{"attack": "brute-force",
                        "scenario": {"budget": 6, "n_fft": 1024, "seed": 7}}],
            )
            status, reply = http_request(
                front.address, "POST", "/v1/jobs", {"job": refused}
            )
            assert status == 429
            assert reply["kind"] == "RateLimited"
            assert "retry_after" in reply
            http_request(
                front.address, "GET",
                f"/v1/jobs/{first['job_id']}/result?timeout=115",
            )
        finally:
            front.stop()
            daemon.stop()


# ---------------------------------------------------------------------------
# CLI verbs
# ---------------------------------------------------------------------------


class TestCLIVerbs:
    def _run(self, *args):
        env = dict(os.environ)
        inherited = env.get("PYTHONPATH")
        env["PYTHONPATH"] = "src" + (
            os.pathsep + inherited if inherited else ""
        )
        return subprocess.run(
            [sys.executable, "-m", "repro.service", *args],
            capture_output=True, text=True, cwd=REPO_ROOT, env=env,
            timeout=120,
        )

    def test_ping_and_jobs_against_live_daemon(self, daemon_factory):
        daemon = daemon_factory("cli", n_workers=1)
        client = DaemonClient(socket=daemon.address)
        client.submit(
            CampaignJob(cells=oracle_cells(1), n_workers=1)
        ).result(timeout=600)
        ping = self._run("ping", "--socket", daemon.address)
        assert ping.returncode == 0
        assert ping.stdout.startswith("daemon pid ")
        jobs = self._run("jobs", "--socket", daemon.address)
        assert jobs.returncode == 0
        assert "completed (1 events)" in jobs.stdout

    def test_ping_unreachable_exits_nonzero(self):
        result = self._run("ping", "--socket", short_socket())
        assert result.returncode == 1
        assert "unreachable" in result.stderr

    def test_jobs_empty(self, daemon_factory):
        daemon = daemon_factory("cli2", n_workers=1)
        result = self._run("jobs", "--socket", daemon.address)
        assert result.returncode == 0
        assert result.stdout.strip() == "no jobs"


# ---------------------------------------------------------------------------
# Protocol satellite: clean EOF mid-length-prefix
# ---------------------------------------------------------------------------


class TestFrameEOF:
    def test_close_mid_length_prefix_is_clean_eof(self):
        """A peer closing after part of the 4-byte length prefix is a
        clean hangup (None), not a ProtocolError — the client's
        reconnect path treats it like any other between-frame close."""
        a, b = socket_module.socketpair()
        try:
            a.sendall(b"\x00\x00")  # 2 of 4 header bytes
            a.close()
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_close_mid_body_is_still_torn(self):
        a, b = socket_module.socketpair()
        try:
            a.sendall(b"\x00\x00\x00\x40{")
            a.close()
            from repro.service.protocol import ProtocolError

            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_frame(b)
        finally:
            b.close()
