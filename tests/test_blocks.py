"""Analog block tests: tank tuning law, VGLNA, comparator, DAC, delay."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blocks import (
    Comparator,
    FeedbackDac,
    InputTransconductor,
    LoopDelay,
    OutputBuffer,
    PreAmplifier,
    TunableLcTank,
    Vglna,
)
from repro.process import typical_chip
from repro.receiver.design import NOMINAL_DESIGN

DESIGN = NOMINAL_DESIGN
CHIP = typical_chip()


@pytest.fixture(scope="module")
def tank():
    return TunableLcTank(DESIGN.tank, CHIP)


class TestTank:
    def test_capacitance_monotone_in_coarse(self, tank):
        caps = [tank.capacitance(cc, 0) for cc in range(0, 256, 17)]
        assert all(b > a for a, b in zip(caps, caps[1:]))

    @given(cc=st.integers(0, 255), cf=st.integers(0, 254))
    @settings(max_examples=50, deadline=None)
    def test_capacitance_monotone_in_fine(self, tank, cc, cf):
        assert tank.capacitance(cc, cf + 1) > tank.capacitance(cc, cf)

    def test_tuning_range_covers_standards(self, tank):
        f_max = tank.resonance_frequency(0, 0)
        f_min = tank.resonance_frequency(255, 255)
        assert f_max > 3.0e9
        assert f_min < 1.5e9

    def test_code_out_of_range(self, tank):
        with pytest.raises(ValueError):
            tank.capacitance(256, 0)
        with pytest.raises(ValueError):
            tank.gmq(64)

    def test_critical_gmq_marks_oscillation(self, tank):
        code = tank.critical_gmq_code(10, 128)
        assert tank.quality_factor(10, 128, code) == math.inf
        assert tank.quality_factor(10, 128, code - 1) < math.inf

    def test_quality_factor_rises_with_gmq(self, tank):
        critical = tank.critical_gmq_code(10, 128)
        qs = [tank.quality_factor(10, 128, g) for g in range(0, critical, 5)]
        assert all(b > a for a, b in zip(qs, qs[1:]))

    def test_state_matrices_are_stable(self, tank):
        a, b = tank.state_matrices(10, 128)
        eigs = np.linalg.eigvals(a)
        assert np.all(eigs.real < 0)
        assert b.shape == (2, 1)

    def test_gmq_current_saturates(self, tank):
        i_small = tank.gmq_current(40, 1e-3)
        i_large = tank.gmq_current(40, 10.0)
        assert i_small == pytest.approx(tank.gmq(40) * 1e-3, rel=1e-3)
        assert i_large == pytest.approx(tank.gmq(40) * DESIGN.tank.gmq_vsat, rel=1e-3)


class TestVglna:
    def test_sixteen_gain_levels(self):
        lna = Vglna(DESIGN.vglna, CHIP)
        gains = [lna.gain_db(c) for c in range(16)]
        assert gains[0] == pytest.approx(-3.0)
        assert gains[15] == pytest.approx(42.0)
        steps = np.diff(gains)
        assert np.allclose(steps, 3.0)

    def test_small_signal_gain_matches_code(self, rng):
        lna = Vglna(DESIGN.vglna, CHIP)
        x = 1e-4 * np.sin(np.linspace(0, 20 * np.pi, 4096))
        y = lna.process(x, code=8, bandwidth=1.0, rng=rng)
        gain = np.std(y) / np.std(x)
        assert 20 * np.log10(gain) == pytest.approx(lna.gain_db(8), abs=0.5)

    def test_large_signal_compresses(self, rng):
        lna = Vglna(DESIGN.vglna, CHIP)
        x = 0.5 * np.sin(np.linspace(0, 20 * np.pi, 4096))
        y = lna.process(x, code=15, bandwidth=1.0, rng=rng)
        assert np.max(np.abs(y)) <= DESIGN.vglna.v_clip + 1e-9

    def test_noise_grows_at_low_gain(self):
        lna = Vglna(DESIGN.vglna, CHIP)
        assert lna.input_noise_density(0) > lna.input_noise_density(15)

    def test_code_out_of_range(self):
        lna = Vglna(DESIGN.vglna, CHIP)
        with pytest.raises(ValueError):
            lna.gain_db(16)


class TestFrontEndBlocks:
    def test_gmin_linear_and_limited(self):
        gmin = InputTransconductor(DESIGN.front_end, CHIP)
        small = gmin.output_current(np.array([1e-3]), 32, enabled=True)[0]
        assert small == pytest.approx(gmin.gm(32) * 1e-3, rel=1e-3)
        big = gmin.output_current(np.array([10.0]), 32, enabled=True)[0]
        assert big == pytest.approx(
            gmin.gm(32) * DESIGN.front_end.gmin_vlin, rel=1e-3
        )

    def test_gmin_disabled_is_silent(self):
        gmin = InputTransconductor(DESIGN.front_end, CHIP)
        out = gmin.output_current(np.ones(8), 63, enabled=False)
        assert np.all(out == 0.0)

    def test_preamp_gain_monotone_with_code(self):
        pre = PreAmplifier(DESIGN.front_end, CHIP)
        gains = [pre.gain(c) for c in range(32)]
        assert all(b > a for a, b in zip(gains, gains[1:]))
        assert gains[0] < 0.1  # starved at code 0

    def test_preamp_clips(self):
        pre = PreAmplifier(DESIGN.front_end, CHIP)
        assert abs(pre.amplify(5.0, 31)) <= DESIGN.front_end.preamp_v_clip

    def test_comparator_decides_sign(self):
        comp = Comparator(DESIGN.front_end, CHIP)
        assert comp.decide(0.3, 31, 0.0, previous=-1.0) == 1.0
        assert comp.decide(-0.3, 31, 0.0, previous=1.0) == -1.0

    def test_comparator_hysteresis_holds_small_inputs(self):
        comp = Comparator(DESIGN.front_end, CHIP)
        h = DESIGN.front_end.comp_hysteresis
        assert comp.decide(-h / 2, 31, 0.0, previous=1.0) == 1.0

    def test_comparator_noise_grows_when_starved(self):
        comp = Comparator(DESIGN.front_end, CHIP)
        assert comp.decision_noise(0) > comp.decision_noise(31)

    def test_comparator_buffer_mode_clamps_and_distorts(self):
        comp = Comparator(DESIGN.front_end, CHIP)
        assert abs(comp.buffer_output(5.0, 31, 0.0)) <= comp.BUFFER_CLAMP + 1e-9
        small = comp.buffer_output(1e-3, 31, 0.0)
        assert small == pytest.approx(comp.BUFFER_GAIN * 1e-3, rel=0.05)

    def test_dac_full_scale_monotone(self):
        dac = FeedbackDac(DESIGN.front_end, CHIP)
        scales = [dac.full_scale(c) for c in range(64)]
        assert all(b > a for a, b in zip(scales, scales[1:]))

    def test_dac_disabled(self):
        dac = FeedbackDac(DESIGN.front_end, CHIP)
        assert dac.output_current(1.0, 32, enabled=False) == 0.0

    def test_delay_mapping(self):
        delay = LoopDelay(DESIGN.front_end, CHIP)
        assert delay.delay_periods(12) == pytest.approx(1.5)
        assert delay.delay_periods(0) == pytest.approx(0.0)
        with pytest.raises(ValueError):
            delay.delay_periods(16)

    def test_buffer_gain_codes(self):
        buf = OutputBuffer(DESIGN.front_end, CHIP)
        assert buf.gain(0) == pytest.approx(0.8)
        assert buf.gain(7) == pytest.approx(1.15)
