"""Window calibration and spectrum power-accounting tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp import make_window, periodogram, periodogram_batch, sine, welch_psd
from repro.dsp.tones import coherent_frequency


class TestWindows:
    def test_hann_noise_bandwidth(self):
        info = make_window("hann", 4096)
        assert info.noise_bandwidth_bins == pytest.approx(1.5, rel=1e-3)

    def test_rect_window_is_flat(self):
        info = make_window("rect", 64)
        assert np.all(info.samples == 1.0)
        assert info.coherent_gain == pytest.approx(1.0)
        assert info.noise_bandwidth_bins == pytest.approx(1.0)

    @pytest.mark.parametrize("name", ["rect", "hann", "hamming", "blackman", "blackmanharris"])
    def test_coherent_gain_is_mean(self, name):
        info = make_window(name, 512)
        assert info.coherent_gain == pytest.approx(float(np.mean(info.samples)))

    def test_unknown_window_rejected(self):
        with pytest.raises(ValueError):
            make_window("kaiser", 64)

    def test_nonpositive_length_rejected(self):
        with pytest.raises(ValueError):
            make_window("hann", 0)


class TestPeriodogramCalibration:
    def test_tone_power_recovered_exactly(self):
        fs, n = 1e6, 4096
        f = coherent_frequency(100e3, fs, n)
        spec = periodogram(sine(n, fs, f, amplitude=2.0), fs)
        # Tone power of a 2 V cosine is 2 V^2.
        assert spec.tone_power(f) == pytest.approx(2.0, rel=1e-6)

    def test_white_noise_band_power(self, rng):
        fs, n = 1e6, 1 << 15
        sigma = 0.3
        spec = periodogram(rng.normal(0.0, sigma, n), fs)
        total = spec.band_power(0.0, fs / 2)
        assert total == pytest.approx(sigma**2, rel=0.05)
        # A quarter of the band holds a quarter of the power.
        quarter = spec.band_power(0.0, fs / 8)
        assert quarter == pytest.approx(sigma**2 / 4, rel=0.1)

    def test_complex_input_two_sided(self):
        fs, n = 1e6, 4096
        f = coherent_frequency(150e3, fs, n)
        t = np.arange(n) / fs
        spec = periodogram(0.5 * np.exp(2j * np.pi * f * t), fs)
        assert spec.freqs[0] < 0  # two-sided
        assert spec.tone_power(f) == pytest.approx(0.25, rel=1e-6)
        # Negative frequency side holds no power for an analytic signal.
        assert spec.band_power(-fs / 2, -1.0) < 1e-12

    def test_psd_db_floor(self):
        fs, n = 1e6, 1024
        spec = periodogram(np.zeros(n), fs)
        assert np.all(spec.psd_db() >= -250.0)

    def test_minimum_length_guard(self):
        with pytest.raises(ValueError):
            periodogram(np.zeros(4), 1.0)

    @given(amp=st.floats(min_value=0.01, max_value=10.0))
    @settings(max_examples=20, deadline=None)
    def test_tone_power_scales_with_amplitude(self, amp):
        fs, n = 1e6, 2048
        f = coherent_frequency(200e3, fs, n)
        spec = periodogram(sine(n, fs, f, amp), fs)
        assert spec.tone_power(f) == pytest.approx(amp**2 / 2, rel=1e-6)


class TestWelch:
    def test_welch_matches_periodogram_noise_level(self, rng):
        fs, n = 1e6, 1 << 14
        x = rng.normal(0.0, 1.0, n)
        spec = welch_psd(x, fs, segment_length=1024)
        assert spec.band_power(0, fs / 2) == pytest.approx(1.0, rel=0.1)

    def test_welch_segment_too_long(self):
        with pytest.raises(ValueError):
            welch_psd(np.zeros(100), 1.0, segment_length=200)

    def test_welch_bad_overlap(self):
        with pytest.raises(ValueError):
            welch_psd(np.zeros(4096), 1.0, segment_length=256, overlap=1.0)


class TestSpectrumQueries:
    def test_band_indices_and_peak(self):
        fs, n = 1e6, 4096
        f = coherent_frequency(100e3, fs, n)
        spec = periodogram(sine(n, fs, f, 1.0), fs)
        peak = spec.peak_index(50e3, 150e3)
        assert abs(spec.freqs[peak] - f) < spec.bin_width

    def test_peak_index_empty_band(self):
        spec = periodogram(np.ones(1024), 1e6)
        with pytest.raises(ValueError):
            spec.peak_index(2e6, 3e6)


class TestPeriodogramBatch:
    """periodogram_batch must match periodogram bit for bit, per row."""

    def test_real_rows_bit_identical(self, rng):
        x = rng.standard_normal((4, 256))
        batch = periodogram_batch(x, fs=1e6)
        for row, spec in zip(x, batch):
            one = periodogram(row, 1e6)
            assert np.array_equal(one.power, spec.power)
            assert np.array_equal(one.freqs, spec.freqs)

    def test_complex_rows_bit_identical(self, rng):
        x = rng.standard_normal((3, 128)) + 1j * rng.standard_normal((3, 128))
        batch = periodogram_batch(x, fs=2e6)
        for row, spec in zip(x, batch):
            one = periodogram(row, 2e6)
            assert np.array_equal(one.power, spec.power)
            assert np.array_equal(one.freqs, spec.freqs)

    def test_odd_record_length(self, rng):
        x = rng.standard_normal((2, 255))
        batch = periodogram_batch(x, fs=1.0)
        for row, spec in zip(x, batch):
            assert np.array_equal(periodogram(row, 1.0).power, spec.power)

    def test_empty_batch(self):
        assert periodogram_batch(np.empty((0, 64)), fs=1.0) == []

    def test_guards(self):
        with pytest.raises(ValueError):
            periodogram_batch(np.zeros(64), fs=1.0)
        with pytest.raises(ValueError):
            periodogram_batch(np.zeros((2, 4)), fs=1.0)
