"""MNA engine tests against hand-calculable circuits."""

import numpy as np
import pytest

from repro.circuit import (
    Capacitor,
    Circuit,
    CurrentSource,
    Inductor,
    Memristor,
    MnaSolver,
    Mosfet,
    Resistor,
    Vccs,
    VoltageSource,
)


def divider():
    c = Circuit("divider")
    c.add(VoltageSource("V1", "in", "0", dc=1.0, ac=1.0))
    c.add(Resistor("R1", "in", "out", 1e3))
    c.add(Resistor("R2", "out", "0", 3e3))
    return c


class TestNetlist:
    def test_duplicate_name_rejected(self):
        c = divider()
        with pytest.raises(ValueError):
            c.add(Resistor("R1", "a", "b", 1.0))

    def test_nodes_excludes_ground(self):
        assert set(divider().nodes()) == {"in", "out"}

    def test_element_lookup_and_replace(self):
        c = divider()
        assert c.element("R2").resistance == 3e3
        c.replace("R2", Resistor("R2", "out", "0", 1e3))
        assert c.element("R2").resistance == 1e3
        with pytest.raises(KeyError):
            c.element("nope")

    def test_negative_resistance_rejected(self):
        with pytest.raises(ValueError):
            Resistor("R", "a", "b", -1.0)

    def test_memristor_states(self):
        on = Memristor("M", "a", "b", r_on=1e3, r_off=1e6, state=1.0)
        off = Memristor("M2", "a", "b", r_on=1e3, r_off=1e6, state=0.0)
        assert on.resistance == pytest.approx(1e3, rel=1e-3)
        assert off.resistance == pytest.approx(1e6, rel=1e-3)
        with pytest.raises(ValueError):
            Memristor("M3", "a", "b", state=2.0)


class TestDc:
    def test_divider(self):
        op = MnaSolver(divider()).dc_operating_point()
        assert op.v("out") == pytest.approx(0.75, rel=1e-6)
        assert op.v("0") == 0.0

    def test_source_branch_current(self):
        op = MnaSolver(divider()).dc_operating_point()
        assert op.branch_currents["V1"] == pytest.approx(-1.0 / 4e3, rel=1e-6)

    def test_inductor_is_dc_short(self):
        c = Circuit("rl")
        c.add(VoltageSource("V", "in", "0", dc=2.0))
        c.add(Resistor("R", "in", "mid", 1e3))
        c.add(Inductor("L", "mid", "0", 1e-9))
        op = MnaSolver(c).dc_operating_point()
        assert op.v("mid") == pytest.approx(0.0, abs=1e-6)
        assert op.branch_currents["L"] == pytest.approx(2e-3, rel=1e-4)

    def test_current_source_into_resistor(self):
        c = Circuit("ir")
        c.add(CurrentSource("I", "0", "x", dc=1e-3))
        c.add(Resistor("R", "x", "0", 2e3))
        op = MnaSolver(c).dc_operating_point()
        assert op.v("x") == pytest.approx(2.0, rel=1e-6)

    def test_vccs(self):
        c = Circuit("gm")
        c.add(VoltageSource("V", "ctl", "0", dc=0.5))
        c.add(Vccs("G", "0", "out", "ctl", "0", gm=1e-3))
        c.add(Resistor("R", "out", "0", 1e3))
        op = MnaSolver(c).dc_operating_point()
        assert op.v("out") == pytest.approx(0.5, rel=1e-4)


class TestMosDc:
    def test_saturation_current(self):
        # Vg=1.0, Vs=0, vth=0.4, kp=2e-4, drain held at 1.2 V: saturated.
        c = Circuit("sat")
        c.add(VoltageSource("VG", "g", "0", dc=1.0))
        c.add(VoltageSource("VD", "d", "0", dc=1.2))
        c.add(Mosfet("M", "d", "g", "0", kp=2e-4, vth=0.4, lam=0.0))
        op = MnaSolver(c).dc_operating_point()
        # I through VD source equals -Id.
        i_d = -op.branch_currents["VD"]
        assert i_d == pytest.approx(0.5 * 2e-4 * 0.6**2, rel=1e-3)

    def test_triode_current(self):
        c = Circuit("triode")
        c.add(VoltageSource("VG", "g", "0", dc=1.2))
        c.add(VoltageSource("VD", "d", "0", dc=0.1))
        c.add(Mosfet("M", "d", "g", "0", kp=1e-4, vth=0.4, lam=0.0))
        op = MnaSolver(c).dc_operating_point()
        i_d = -op.branch_currents["VD"]
        expected = 1e-4 * (0.8 * 0.1 - 0.5 * 0.1**2)
        assert i_d == pytest.approx(expected, rel=1e-3)

    def test_cutoff(self):
        mos = Mosfet("M", "d", "g", "s", kp=1e-4, vth=0.5)
        assert mos.drain_current(vg=0.3, vd=1.0, vs=0.0) == 0.0

    def test_pmos_polarity(self):
        mos = Mosfet("M", "d", "g", "s", kp=1e-4, vth=0.4, lam=0.0, polarity="pmos")
        # Source at 1.2, gate at 0.2 -> vsg = 1.0, saturated for vd low.
        i = mos.drain_current(vg=0.2, vd=0.0, vs=1.2)
        assert i == pytest.approx(-0.5 * 1e-4 * 0.6**2, rel=1e-3)

    def test_diode_connected_kcl(self):
        c = Circuit("diode")
        c.add(VoltageSource("VDD", "vdd", "0", dc=1.2))
        c.add(Resistor("Rb", "vdd", "d", 10e3))
        c.add(Mosfet("M1", "d", "d", "0", kp=2e-4, vth=0.4))
        op = MnaSolver(c).dc_operating_point()
        vd = op.v("d")
        lhs = (1.2 - vd) / 10e3
        rhs = 0.5 * 2e-4 * (vd - 0.4) ** 2 * (1 + 0.02 * vd)
        assert lhs == pytest.approx(rhs, rel=1e-4)


class TestAc:
    def test_rc_corner(self):
        c = Circuit("rc")
        c.add(VoltageSource("V", "in", "0", ac=1.0))
        c.add(Resistor("R", "in", "out", 1e3))
        c.add(Capacitor("C", "out", "0", 1e-9))
        fc = 1.0 / (2 * np.pi * 1e3 * 1e-9)
        ac = MnaSolver(c).ac_analysis(np.array([fc]))
        assert abs(ac.v("out")[0]) == pytest.approx(1 / np.sqrt(2), rel=1e-3)

    def test_rlc_resonance_peak(self):
        c = Circuit("tank")
        c.add(CurrentSource("I", "0", "t", ac=1.0))
        c.add(Resistor("R", "t", "0", 100.0))
        c.add(Inductor("L", "t", "0", 0.5e-9))
        c.add(Capacitor("C", "t", "0", 5.63e-12))
        f0 = 1 / (2 * np.pi * np.sqrt(0.5e-9 * 5.63e-12))
        freqs = np.linspace(0.8 * f0, 1.2 * f0, 801)
        ac = MnaSolver(c).ac_analysis(freqs)
        mag = np.abs(ac.v("t"))
        assert abs(freqs[np.argmax(mag)] - f0) < 0.002 * f0
        assert mag.max() == pytest.approx(100.0, rel=0.01)

    def test_mos_smallsignal_gain(self):
        # Common source: gain = -gm * Rd.
        c = Circuit("cs")
        c.add(VoltageSource("VDD", "vdd", "0", dc=1.8))
        c.add(VoltageSource("VG", "g", "0", dc=1.0, ac=1.0))
        c.add(Resistor("Rd", "vdd", "d", 5e3))
        c.add(Mosfet("M", "d", "g", "0", kp=2e-4, vth=0.4, lam=0.0))
        op = MnaSolver(c).dc_operating_point()
        __, gm, __ = c.element("M").small_signal(op.v("g"), op.v("d"), 0.0)
        ac = MnaSolver(c).ac_analysis(np.array([1e3]), operating_point=op)
        assert abs(ac.v("d")[0]) == pytest.approx(gm * 5e3, rel=0.02)
