"""Locking-scheme and metric tests (the paper's core contribution)."""

import numpy as np
import pytest

from repro.locking import (
    PerformanceSpec,
    ProgrammabilityLock,
    avalanche_study,
    capacitor_subkey_uniqueness,
    key_population_study,
    key_space_analysis,
)
from repro.locking.metrics import structural_unlocking_bound
from repro.receiver import ConfigWord


class TestSpecs:
    def test_spec_derivation(self, ref_standard):
        spec = PerformanceSpec.for_standard(ref_standard)
        assert spec.snr_min_db == ref_standard.snr_spec_db
        assert spec.snr_rx_min_db < spec.snr_min_db

    def test_meets_checks_only_provided(self, ref_standard):
        spec = PerformanceSpec.for_standard(ref_standard)
        assert spec.meets(snr_db=spec.snr_min_db + 1)
        assert not spec.meets(snr_db=spec.snr_min_db - 1)
        assert spec.meets(snr_db=spec.snr_min_db + 1, sfdr_db=None)
        assert not spec.meets(
            snr_db=spec.snr_min_db + 1, sfdr_db=spec.sfdr_min_db - 1
        )


class TestProgrammabilityLock:
    @pytest.fixture(scope="class")
    def lock(self, hero_chip, quick_calibration, ref_standard):
        lock = ProgrammabilityLock(chip=hero_chip)
        lock._lut[ref_standard.index] = quick_calibration
        return lock

    def test_key_for_provisioned_standard(self, lock, ref_standard, correct_key):
        assert lock.key_for(ref_standard) == correct_key

    def test_unprovisioned_standard_rejected(self, lock):
        from repro.receiver import STANDARDS

        with pytest.raises(KeyError):
            lock.key_for(STANDARDS[3])

    def test_correct_key_unlocks(self, lock, ref_standard, correct_key):
        evaluation = lock.evaluate_key(correct_key, ref_standard, n_fft=4096)
        assert evaluation.unlocked
        assert evaluation.snr_db > 38.0

    def test_random_key_locks(self, lock, ref_standard, rng):
        evaluation = lock.evaluate_key(
            ConfigWord.random(rng), ref_standard, n_fft=2048
        )
        assert not evaluation.unlocked

    def test_overheads_are_zero(self):
        overhead = ProgrammabilityLock.overhead_summary()
        assert all(v == 0.0 for v in overhead.values())


class TestMetrics:
    @pytest.fixture(scope="class")
    def study(self, hero_chip, correct_key, ref_standard):
        return key_population_study(
            hero_chip,
            correct_key,
            ref_standard,
            n_keys=12,
            rng=np.random.default_rng(7),
            n_fft=2048,
        )

    def test_population_shape(self, study):
        assert study.invalid_snrs_db.size == 12
        assert study.correct_snr_db > study.max_invalid_db

    def test_deceptive_key_is_argmax(self, study):
        idx = study.deceptive_index
        assert study.invalid_snrs_db[idx] == study.max_invalid_db
        assert study.keys[idx] == study.deceptive_key

    def test_counting_helpers(self, study):
        assert study.count_above(-1000.0) == 12
        assert study.count_above(1000.0) == 0
        assert 0.0 <= study.fraction_unlocking(40.0) <= 1.0

    def test_avalanche_degrades_with_distance(
        self, hero_chip, correct_key, ref_standard
    ):
        points = avalanche_study(
            hero_chip,
            correct_key,
            ref_standard,
            distances=(1, 16),
            trials_per_distance=4,
            n_fft=2048,
        )
        correct_snr = 40.0
        assert points[1].mean_snr_db < correct_snr - 10.0
        assert points[0].max_snr_db >= points[0].min_snr_db

    def test_key_space_analysis_rule_of_three(self, study):
        analysis = key_space_analysis(study, spec_db=40.0)
        assert analysis.total_keys == 1 << 64
        assert analysis.upper_bound_fraction >= 3.0 / 12
        assert analysis.expected_trials == pytest.approx(
            1.0 / analysis.upper_bound_fraction
        )

    def test_structural_bound_is_tiny(self, hero_chip, correct_key):
        bound = structural_unlocking_bound(hero_chip, correct_key)
        assert 0.0 < bound < 1e-4

    def test_capacitor_subkey_near_unique(self, hero_chip, correct_key):
        tank = hero_chip.blocks.tank
        target = tank.capacitance(correct_key.cc_coarse, correct_key.cf_fine)
        count = capacitor_subkey_uniqueness(hero_chip, target)
        # Unique up to coarse/fine overlap degeneracy: a couple of dozen
        # at most out of 65536 pairs (the fine array deliberately
        # over-ranges the coarse LSB).
        assert 1 <= count <= 24
