"""Digital chain and full-receiver tests: slicer, mixer, decimation."""

import numpy as np
import pytest

from repro.dsp import periodogram, sine
from repro.dsp.tones import coherent_frequency
from repro.receiver import (
    Chip,
    DigitalChain,
    STANDARDS,
    standard_by_index,
    standard_by_name,
)

STD = STANDARDS[0]


class TestSlicer:
    def test_full_swing_bitstream_passes(self):
        chain = DigitalChain(osr=64, logic_threshold=0.4)
        bits = np.tile([1.0, -1.0], 32)
        assert np.array_equal(chain.slice_input(bits * 0.9), bits)

    def test_small_analog_waveform_sticks(self):
        chain = DigitalChain(osr=64, logic_threshold=0.4)
        analog = 0.2 * np.sin(np.linspace(0, 10 * np.pi, 64))
        assert np.all(chain.slice_input(analog) == -1.0)


class TestChain:
    def test_synthetic_tone_demodulates(self):
        # A +/-1 stream carrying a tone at fs/4 + delta should appear at
        # +delta in the complex baseband with roughly unit-scaled power.
        fs = STD.fs
        n = 64 * 512
        delta = coherent_frequency(15e6, fs, n)
        carrier = sine(n, fs, fs / 4 + delta, 0.5)
        stream = np.where(carrier + 0.3 * np.sin(np.arange(n)) >= 0, 1.0, -1.0)
        chain = DigitalChain(osr=64, logic_threshold=0.0)
        res = chain.process(stream, fs)
        assert res.fs_out == pytest.approx(fs / 64)
        spec = periodogram(res.baseband[32:], res.fs_out)
        peak = spec.peak_index(5e6, 40e6)
        assert abs(spec.freqs[peak] - delta) < 3 * spec.bin_width

    def test_output_length(self):
        chain = DigitalChain(osr=64)
        res = chain.process(np.ones(64 * 100), STD.fs)
        assert res.baseband.size == pytest.approx(100, abs=1)
        assert np.iscomplexobj(res.baseband)


class TestReceiverEndToEnd:
    def test_receiver_snr_for_synthesised_key(self):
        from repro.receiver import ConfigWord, measure_receiver_snr

        chip = Chip()
        tank = chip.blocks.tank
        best = min(
            ((cc, cf) for cc in range(0, 16) for cf in range(0, 256, 8)),
            key=lambda p: abs(tank.resonance_frequency(*p) - STD.f_center),
        )
        key = ConfigWord(
            lna_gain=7,
            cc_coarse=best[0],
            cf_fine=best[1],
            gmq_code=tank.critical_gmq_code(*best) - 1,
            gmin_code=24,
            preamp_code=20,
            comp_code=31,
            dac_code=32,
            delay_code=12,
            buffer_code=4,
        )
        m = measure_receiver_snr(chip, key, STD, n_baseband=256, seed=1)
        assert m.snr_db > 30.0


class TestStandards:
    def test_fs_is_four_f0(self):
        for std in STANDARDS:
            assert std.fs == pytest.approx(4 * std.f_center)

    def test_unique_indices(self):
        assert len({s.index for s in STANDARDS}) == len(STANDARDS)

    def test_frequency_coverage(self):
        freqs = [s.f_center for s in STANDARDS]
        assert min(freqs) >= 1.5e9
        assert max(freqs) <= 3.0e9

    def test_lookups(self):
        assert standard_by_name("bluetooth").f_center == pytest.approx(2.441e9)
        assert standard_by_index(0).name == "REF3000"
        with pytest.raises(KeyError):
            standard_by_name("lorawan")
        with pytest.raises(KeyError):
            standard_by_index(9)


class TestMatrixChain:
    """DigitalChain.process_matrix vs per-key process, bit for bit."""

    def chain(self):
        return DigitalChain(osr=64, logic_threshold=0.0)

    @pytest.mark.parametrize(
        "shape",
        [
            (1, 64 * 32),       # one key
            (5, 64 * 32),       # plain batch
            (3, 64 * 32 + 13),  # record not a multiple of the OSR
        ],
    )
    def test_bit_identical_to_scalar(self, shape, rng):
        chain = self.chain()
        records = rng.standard_normal(shape)
        results = chain.process_matrix(records, STD.fs)
        assert len(results) == shape[0]
        for record, got in zip(records, results):
            one = chain.process(record, STD.fs)
            assert np.array_equal(one.baseband, got.baseband)
            assert one.fs_out == got.fs_out
            assert one.fs_mod == got.fs_mod

    def test_per_key_clock_rates(self, rng):
        chain = self.chain()
        records = rng.standard_normal((2, 64 * 16))
        fs = [STD.fs, STD.fs / 2]
        results = chain.process_matrix(records, fs)
        for record, f, got in zip(records, fs, results):
            one = chain.process(record, f)
            assert np.array_equal(one.baseband, got.baseband)
            assert one.fs_out == got.fs_out

    def test_empty_batch(self):
        assert self.chain().process_matrix(np.empty((0, 64 * 16)), STD.fs) == []

    def test_guards(self, rng):
        chain = self.chain()
        with pytest.raises(ValueError):
            chain.process_matrix(np.zeros(64 * 16), STD.fs)
        with pytest.raises(ValueError):
            chain.process_matrix(np.zeros((2, 64 * 16)), [STD.fs])
