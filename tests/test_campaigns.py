"""Campaign-API tests: registry, scenarios, report schema, determinism
across backends and worker processes, atomic budget metering, JSON
artefacts."""

import json
import os

import numpy as np
import pytest

from repro.attacks import MeasurementOracle, QueryBudgetExceeded
from repro.baselines import MemristorBiasLock, MixLock, ProposedFabricLock
from repro.campaigns import (
    ATTACKS,
    AttackReport,
    CampaignCell,
    ChipSpec,
    Removal,
    Sat,
    TARGETS,
    ThreatScenario,
    attack_report_to_dict,
    campaign_result_to_dict,
    expand_matrix,
    make_attack,
    run_campaign,
)
from repro.locking import ProgrammabilityLock
from repro.receiver import ConfigWord


def quick_cells():
    """Cheap deterministic cells covering oracle and scheme attacks."""
    base = ThreatScenario(budget=6, n_fft=1024, seed=5)
    return [
        CampaignCell("brute-force", base),
        CampaignCell(
            "brute-force",
            base.with_(scheme="mixlock", scheme_params=(("n_key_bits", 5),)),
        ),
        CampaignCell(
            "sat", base.with_(scheme="mixlock", scheme_params=(("n_key_bits", 5),))
        ),
        CampaignCell("removal", base.with_(scheme="memristor")),
        CampaignCell("brute-force", base.with_(budget=20, max_queries=4)),
    ]


class TestRegistry:
    def test_all_five_attacks_registered(self):
        # The five incompatible pre-campaign APIs, plus annealing.
        assert {"brute-force", "genetic", "removal", "sat", "transfer"} <= set(
            ATTACKS
        )
        assert "annealing" in ATTACKS

    def test_make_attack_unknown_name(self):
        with pytest.raises(KeyError, match="unknown attack"):
            make_attack("rowhammer")

    def test_make_attack_params(self):
        attack = make_attack("genetic", population_size=8)
        assert attack.population_size == 8

    def test_target_registry_builds_baselines(self):
        scenario = ThreatScenario(
            scheme="mixlock", scheme_params=(("n_key_bits", 4),)
        )
        scheme = scenario.resolve_scheme()
        assert isinstance(scheme, MixLock)
        assert scheme.n_key_bits == 4

    def test_unknown_scheme_and_cost(self):
        with pytest.raises(KeyError, match="unknown target scheme"):
            ThreatScenario(scheme="adamantium").resolve_scheme()
        with pytest.raises(KeyError, match="unknown cost model"):
            ThreatScenario(cost="free").cost_model()

    def test_fabric_in_targets(self):
        assert "fabric" in TARGETS


class TestChipSpec:
    def test_same_spec_same_silicon(self):
        a = ChipSpec(chip_id=2).build()
        b = ChipSpec(chip_id=2).build()
        assert a.variations.summary() == b.variations.summary()

    def test_distinct_ids_distinct_silicon(self):
        a = ChipSpec(chip_id=0).build()
        b = ChipSpec(chip_id=1).build()
        assert a.variations.summary() != b.variations.summary()

    def test_calibration_cache_is_lot_qualified(self):
        """Dies with equal ids from different lots are different silicon
        and must not share engine-cached calibrations (regression: the
        cache used to key on chip_id alone, so a sequential run handed
        lot B the lot-A calibration while sharded workers recomputed it
        correctly — breaking sequential == sharded determinism).

        Uses sentinel factories on a private engine: only the cache-key
        resolution is under test, not the calibration itself."""
        from repro.engine import SimulationEngine
        from repro.receiver import STANDARDS

        engine = SimulationEngine()
        std = STANDARDS[0]
        spec_a = ChipSpec(lot_seed=1, chip_id=0)
        spec_b = ChipSpec(lot_seed=2, chip_id=0)

        def cached(spec, factory):
            # The lot-qualified key shape provision_calibration uses.
            return engine.calibrated(
                spec.build(), std, factory=factory,
                key=(spec.lot_seed, spec.chip_id, std.index),
            )

        sentinel_a, sentinel_b = object(), object()
        assert cached(spec_a, lambda: sentinel_a) is sentinel_a
        assert cached(spec_b, lambda: sentinel_b) is sentinel_b
        assert cached(spec_a, lambda: object()) is sentinel_a


class TestAtomicBudget:
    def test_charge_batch_is_atomic(self, hero_chip, ref_standard, rng):
        oracle = MeasurementOracle(
            chip=hero_chip, standard=ref_standard, n_fft=1024, max_queries=3
        )
        keys = [ConfigWord.random(rng) for _ in range(5)]
        with pytest.raises(QueryBudgetExceeded):
            oracle.snr_batch(keys)
        # Nothing was charged: the overrun was refused before any
        # measurement, not mid-loop.
        assert oracle.n_queries == 0
        assert oracle.elapsed_seconds == 0.0
        oracle.snr_batch(keys[:3])
        assert oracle.n_queries == 3
        with pytest.raises(QueryBudgetExceeded):
            oracle.snr(keys[0])
        assert oracle.n_queries == 3

    def test_charge_batch_negative_guard(self, hero_chip, ref_standard):
        oracle = MeasurementOracle(chip=hero_chip, standard=ref_standard)
        with pytest.raises(ValueError):
            oracle.charge_batch(-1, 1.0)

    def test_budget_raises_at_identical_query_counts(self):
        """QueryBudgetExceeded fires at the same metered count through
        the unified API, whatever backend or worker count ran the cell."""
        cell = CampaignCell(
            "brute-force",
            ThreatScenario(budget=20, max_queries=4, n_fft=1024, seed=7),
        )
        counts = set()
        for backend in ("reference", "vectorized"):
            for n_workers in (1, 2):
                campaign = run_campaign(
                    [cell, cell], n_workers=n_workers, backend=backend
                )
                for report in campaign.reports:
                    assert report.extra("budget_exhausted") is True
                    assert not report.success
                    counts.add(report.n_queries)
        assert counts == {4}


class TestLockEffectiveness:
    def test_batched_draw_matches_scalar_loop(self):
        scheme = MemristorBiasLock()
        batched = scheme.lock_effectiveness(32, np.random.default_rng(11))
        rng = np.random.default_rng(11)
        key_space = 1 << scheme.profile.key_bits
        failures = 0
        for _ in range(32):
            key = int(rng.integers(0, key_space))
            if key != scheme.correct_key and not scheme.unlocks(key):
                failures += 1
        assert batched == failures / 32

    def test_zero_keys_guarded(self, hero_chip, ref_standard, quick_calibration):
        with pytest.raises(ValueError, match="n_random_keys"):
            MemristorBiasLock().lock_effectiveness(0, np.random.default_rng(1))
        lock = ProgrammabilityLock(chip=hero_chip)
        lock._lut[ref_standard.index] = quick_calibration
        proposed = ProposedFabricLock(lock=lock, standard=ref_standard)
        with pytest.raises(ValueError, match="n_random_keys"):
            proposed.lock_effectiveness(0, np.random.default_rng(1))


class TestDeterminism:
    def test_backends_produce_identical_reports(self):
        cells = quick_cells()
        ref = run_campaign(cells, backend="reference")
        vec = run_campaign(cells, backend="vectorized")
        assert ref.reports == vec.reports

    def test_sharded_run_matches_sequential(self):
        cells = quick_cells()
        seq = run_campaign(cells, n_workers=1)
        par = run_campaign(cells, n_workers=2)
        assert seq.reports == par.reports
        assert par.n_workers == 2
        assert len(par.cell_seconds) == len(cells)

    def test_same_seed_same_reports(self):
        cells = quick_cells()
        assert run_campaign(cells).reports == run_campaign(cells).reports

    def test_workers_guard(self):
        with pytest.raises(ValueError, match="n_workers"):
            run_campaign(quick_cells(), n_workers=0)


class TestExpandMatrix:
    def test_grid_shape_and_order(self):
        cells = expand_matrix(
            attacks=["removal", ("brute-force", {"batch_size": 4})],
            schemes=["fabric", ("mixlock", {"n_key_bits": 5})],
            standard_indices=(0, 1),
            chip_ids=(0, 3),
        )
        # The chip axis multiplies only the fabric target; baseline
        # cells carry no chip, so per attack: 2 std x (2 + 1) chips.
        assert len(cells) == 2 * 2 * (2 + 1)
        # Attacks outermost, chips innermost.
        assert cells[0].attack == "removal"
        assert cells[0].scenario.chip.chip_id == 0
        assert cells[1].scenario.chip.chip_id == 3
        assert cells[-1].attack == "brute-force"
        assert dict(cells[-1].attack_params) == {"batch_size": 4}
        assert dict(cells[-1].scenario.scheme_params) == {"n_key_bits": 5}
        assert cells[-1].scenario.standard_index == 1
        assert len({c.label() for c in cells}) == len(cells)

    def test_baseline_cells_not_duplicated_per_chip(self):
        cells = expand_matrix(
            ["removal"], schemes=["memristor"], chip_ids=(0, 1, 2, 3)
        )
        assert len(cells) == 1

    def test_base_scenario_propagates(self):
        cells = expand_matrix(
            ["removal"],
            base=ThreatScenario(budget=7, cost="simulation", seed=42),
        )
        assert cells[0].scenario.budget == 7
        assert cells[0].scenario.cost == "simulation"
        assert cells[0].scenario.seed == 42

    def test_empty_axes_expand_to_empty_grids(self):
        # An empty axis empties the whole product — no attack, no
        # standard, or (for the chip-carrying fabric target) no chip.
        assert expand_matrix([]) == []
        assert expand_matrix(["removal"], standard_indices=()) == []
        assert expand_matrix(["removal"], chip_ids=()) == []
        # Baseline schemes carry no chip, so an empty chip axis still
        # empties their expansion (the axis is sliced, not defaulted).
        assert expand_matrix(
            ["removal"], schemes=["memristor"], chip_ids=()
        ) == []
        # An empty campaign is a valid (empty) run, not an error.
        result = run_campaign([])
        assert result.reports == [] and result.cell_seconds == []

    def test_duplicate_standards_expand_to_duplicate_cells(self):
        # Grid semantics: axes are sequences, not sets — a repeated
        # standard index repeats its cells, in expansion order.
        cells = expand_matrix(["removal"], standard_indices=(0, 0, 1))
        assert len(cells) == 3
        assert cells[0] == cells[1]
        assert cells[2].scenario.standard_index == 1

    def test_single_cell_grid(self):
        cells = expand_matrix(
            ["brute-force"],
            schemes=["fabric"],
            standard_indices=(3,),
            chip_ids=(5,),
        )
        assert len(cells) == 1
        assert cells[0].scenario.standard_index == 3
        assert cells[0].scenario.chip.chip_id == 5


class TestReportsAndSerialization:
    def test_report_summary_lines(self):
        report = AttackReport(
            attack="brute-force",
            scenario=None,
            applicable=True,
            success=False,
            best_metric_db=21.5,
            n_queries=12,
            lab_seconds=12.0,
        )
        assert "brute-force failed after 12 queries" in report.summary()
        na = AttackReport(
            attack="sat", scenario=None, applicable=False, success=False
        )
        assert "not applicable" in na.summary()

    def test_json_artefact_roundtrip(self, tmp_path):
        cells = quick_cells()[:2]
        path = tmp_path / "campaign.json"
        campaign = run_campaign(cells, json_path=str(path))
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro.campaigns/v1"
        assert payload["n_cells"] == 2
        assert payload["cells"] == [c.label() for c in cells]
        assert [r["attack"] for r in payload["reports"]] == [
            r.attack for r in campaign.reports
        ]
        # Every value survived the jsonable normalisation.
        json.dumps(payload)

    def test_report_dict_handles_numpy(self):
        report = AttackReport(
            attack="x",
            scenario=ThreatScenario(),
            applicable=True,
            success=bool(np.bool_(True)),
            best_metric_db=np.float64(1.5),
            extras={"snrs": np.array([1.0, 2.0]), "n": np.int64(3)},
        )
        payload = attack_report_to_dict(report)
        json.dumps(payload)
        assert payload["extras"]["snrs"] == [1.0, 2.0]

    def test_campaign_result_counters(self):
        campaign = run_campaign(quick_cells()[:2])
        payload = campaign_result_to_dict(campaign)
        assert payload["total_queries"] == campaign.total_queries()
        assert payload["n_successes"] == len(campaign.successes())


class TestSchemeLevelAdjudication:
    def test_removal_adjudicate_outside_campaign(self):
        report = Removal().adjudicate(MemristorBiasLock())
        assert report.applicable and report.success
        assert report.scenario is None
        assert report.n_queries == 1

    def test_sat_applicability_probe(
        self, hero_chip, ref_standard, quick_calibration
    ):
        assert Sat.applicable_to(MixLock(n_key_bits=4))
        lock = ProgrammabilityLock(chip=hero_chip)
        lock._lut[ref_standard.index] = quick_calibration
        fabric = ProposedFabricLock(lock=lock, standard=ref_standard)
        assert not Sat.applicable_to(fabric)
        report = Sat().adjudicate(fabric)
        assert not report.applicable
        assert "no miter" in str(report.extra("reason"))


class TestRunnerJson:
    def test_runner_writes_json_artefact(self, tmp_path):
        import io

        from repro.experiments import runner

        path = tmp_path / "report.json"
        runner.run_all(
            names=["tab-ovr"], stream=io.StringIO(), json_path=str(path)
        )
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro.experiments/v1"
        assert payload["mode"] == "quick"
        assert payload["experiments"][0]["experiment_id"] == "tab-overhead"
        assert payload["experiments"][0]["rows"][-1][0] == "this work"


class TestOracleAttackAdapters:
    """Adapter metering matches the primitive attacks exactly."""

    def test_brute_force_adapter_matches_primitive(self):
        from repro.attacks import BruteForceAttack

        scenario = ThreatScenario(budget=8, n_fft=1024, seed=9)
        report = make_attack("brute-force").execute(scenario)
        oracle = scenario.oracle()
        outcome = BruteForceAttack(
            oracle, rng=np.random.default_rng(9)
        ).run(8)
        assert report.n_queries == oracle.n_queries
        assert report.best_metric_db == outcome.best_snr_db
        assert report.best_key == outcome.best_key.encode()
        assert report.lab_seconds == oracle.elapsed_seconds

    def test_oracle_attacks_not_applicable_to_bench_schemes(self):
        scenario = ThreatScenario(
            scheme="memristor", budget=4, n_fft=1024, seed=1
        )
        for name in ("annealing", "genetic", "transfer"):
            report = make_attack(name).execute(scenario)
            assert not report.applicable
            assert "oracle" in str(report.extra("reason"))


class TestCalibrationStoreSharing:
    def test_fabric_triples_follow_attack_demand(self):
        """Only attacks that calibrate declare triples: oracle-only
        attacks must not make the campaign pre-provision anything."""
        base = ThreatScenario(budget=2, n_fft=1024)
        cells = [
            CampaignCell("removal", base.with_(chip=ChipSpec(chip_id=1))),
            CampaignCell("removal", base.with_(chip=ChipSpec(chip_id=0))),
            CampaignCell("removal", base.with_(chip=ChipSpec(chip_id=1))),
            CampaignCell("removal", base.with_(scheme="memristor")),
            CampaignCell("brute-force", base.with_(chip=ChipSpec(chip_id=7))),
            CampaignCell("transfer", base.with_(chip=ChipSpec(chip_id=2))),
        ]
        from repro.campaigns.campaign import fabric_triples

        # removal provisions its own die; transfer its donor (die 1);
        # brute-force only queries the oracle and provisions nothing.
        assert fabric_triples(cells) == [(2020, 0, 0), (2020, 1, 0)]

    def test_sharded_fleet_calibrates_once_per_die(self, tmp_path):
        """The tentpole property: workers share provisioning through the
        store, so a fleet campaign calibrates each die exactly once."""
        from repro.engine import CalibrationStore

        base = ThreatScenario(budget=2, n_fft=1024, seed=3)
        cells = [
            CampaignCell(
                "removal",
                base.with_(chip=ChipSpec(chip_id=chip_id), seed=seed),
            )
            for chip_id in range(2)
            for seed in (3, 4)
        ]
        store = str(tmp_path / "store")
        seq = run_campaign(cells)
        par = run_campaign(cells, n_workers=2, calibration_store=store)
        assert seq.reports == par.reports
        events = CalibrationStore(store).compute_events()
        assert len(events) == 2  # one calibration per die, fleet-wide

    def test_sequential_run_persists_to_named_store(self, tmp_path):
        from repro.engine import CalibrationStore, clear_caches

        clear_caches()
        store = str(tmp_path / "store")
        base = ThreatScenario(budget=2, n_fft=1024, seed=3)
        cells = [
            CampaignCell("removal", base),
            CampaignCell("removal", base.with_(seed=4)),
        ]
        run_campaign(cells, calibration_store=store)
        assert len(CalibrationStore(store)) == 1
        # A later campaign (fresh engine caches) reuses it: no new computes.
        clear_caches()
        run_campaign(cells, calibration_store=store)
        assert len(CalibrationStore(store).compute_events()) == 1
