"""Sub-task scheduling tests: partitioned attack cells.

The acceptance property of the partitioned path: a cell whose attack
adapter declares a partition plan (brute-force key-range chunks,
genetic per-generation population slices) is shattered into
scheduler-internal sub-tasks, yet its assembled report — including
``n_queries``, tenant meter totals and the
:class:`~repro.attacks.oracle.QueryBudgetExceeded` refusal point — is
byte-identical to the scalar cell's, across partition sizes, worker
counts and engine backends, on both the work-stealing scheduler and
the daemon fleet.  Plus the unit semantics of the plans themselves and
of the :class:`~repro.attacks.oracle.ScriptedOracle` replay.

These tests install no fault plans of their own, so the chaos CI leg
can run them under an ambient ``REPRO_FAULTS`` crash schedule — the
differential must hold there too.
"""

import os
import pickle
import tempfile
import uuid

import numpy as np
import pytest

from repro.attacks.oracle import QueryBudgetExceeded, ScriptedOracle
from repro.campaigns import CampaignCell, ThreatScenario, run_campaign
from repro.campaigns.campaign import cell_partition
from repro.receiver.config import ConfigWord
from repro.service import CampaignJob, DaemonClient, FoundryDaemon, FoundryService


def short_socket() -> str:
    """A socket path short enough for AF_UNIX (pytest tmp_path is not)."""
    return os.path.join(
        tempfile.gettempdir(), f"repro-{uuid.uuid4().hex[:10]}.sock"
    )


@pytest.fixture
def daemon_factory(tmp_path):
    """Start daemons on short sockets and always stop them."""
    started = []

    def factory(tag="d", **kwargs):
        kwargs.setdefault("n_workers", 2)
        daemon = FoundryDaemon(tmp_path / tag, socket=short_socket(), **kwargs)
        daemon.start()
        started.append(daemon)
        return daemon

    yield factory
    for daemon in started:
        daemon.stop()


def report_bytes(reports) -> list:
    """Per-report pickle bytes (the byte-for-byte identity the guards
    compare; see ``tests/test_daemon.py``)."""
    return [pickle.dumps(pickle.loads(pickle.dumps(r))) for r in reports]


def bf_cell(budget=24, seed=5, subtask_keys=0, **scenario_kwargs):
    scenario = ThreatScenario(
        budget=budget, n_fft=1024, seed=seed, **scenario_kwargs
    )
    params = (("subtask_keys", subtask_keys),) if subtask_keys else ()
    return CampaignCell("brute-force", scenario, attack_params=params)


def ga_cell(budget=48, seed=7, subtask_slices=0, sfdr_weight=0.0,
            **scenario_kwargs):
    scenario = ThreatScenario(
        budget=budget, n_fft=1024, seed=seed, **scenario_kwargs
    )
    params = [("population_size", 8)]
    if subtask_slices:
        params.append(("subtask_slices", subtask_slices))
    if sfdr_weight:
        params.append(("sfdr_weight", sfdr_weight))
    return CampaignCell(
        "genetic", scenario, attack_params=tuple(sorted(params))
    )


# ---------------------------------------------------------------------------
# Partition plan semantics
# ---------------------------------------------------------------------------


class TestPartitionPlans:
    def test_unpartitioned_cells_declare_no_plan(self):
        assert cell_partition(bf_cell()) is None  # no knob: scalar
        assert cell_partition(ga_cell()) is None
        # A knob that cannot split the budget stays scalar too.
        assert cell_partition(bf_cell(budget=8, subtask_keys=8)) is None
        # Attacks without a partition protocol run scalar by the base
        # class default.
        removal = CampaignCell(
            "removal", ThreatScenario(budget=6, n_fft=1024, seed=5)
        )
        assert cell_partition(removal) is None

    def test_brute_force_plan_covers_the_key_stream(self):
        plan = cell_partition(bf_cell(budget=20, subtask_keys=8))
        parts = plan.initial_parts()
        assert [(p.start, p.count) for _, p in parts] == [
            (0, 8), (8, 8), (16, 4)
        ]
        # Chunk scores absorb in any order and never fan out further;
        # the script concatenates them back in key-stream order.
        assert plan.absorb(parts[2][0], [3.0]) == []
        assert plan.absorb(parts[0][0], [1.0]) == []
        assert plan.absorb(parts[1][0], [2.0]) == []
        assert plan.script() == {"snrs": [1.0, 2.0, 3.0]}

    def test_brute_force_plan_caps_at_max_queries(self):
        plan = cell_partition(
            bf_cell(budget=20, subtask_keys=8, max_queries=10)
        )
        parts = plan.initial_parts()
        # Speculation never runs past the refusal point.
        assert sum(p.count for _, p in parts) == 10

    def test_genetic_plan_fans_out_generation_by_generation(self):
        plan = cell_partition(ga_cell(budget=32, subtask_slices=2))
        parts = plan.initial_parts()
        assert len(parts) == 2
        assert [pid[:2] for pid, _ in parts] == [("gen", 0), ("gen", 0)]
        total = sum(len(p.keys) for _, p in parts)
        assert total == 8  # the whole generation-0 population, sliced
        # The generation completes only when every slice is absorbed —
        # then the next generation fans out (scores far below spec).
        low = lambda p: [-90.0] * len(p.keys)
        assert plan.absorb(parts[0][0], (low(parts[0][1]), None)) == []
        fresh = plan.absorb(parts[1][0], (low(parts[1][1]), None))
        assert [pid[:2] for pid, _ in fresh] == [("gen", 1), ("gen", 1)]


# ---------------------------------------------------------------------------
# The scripted oracle (sequential replay)
# ---------------------------------------------------------------------------


class TestScriptedOracle:
    def _oracle(self, **kwargs):
        return ThreatScenario(n_fft=1024, seed=5, **kwargs).oracle()

    def test_serves_script_in_order_and_still_charges(self):
        rng = np.random.default_rng(3)
        keys = [ConfigWord.random(rng) for _ in range(4)]
        scripted = ScriptedOracle(self._oracle(), snrs=[1.0, 2.0, 3.0, 4.0])
        assert scripted.snr_batch(keys[:2]) == [1.0, 2.0]
        assert scripted.snr_batch(keys[2:]) == [3.0, 4.0]
        # Charges landed exactly as live measurements would have.
        assert scripted.n_queries == 4
        assert scripted.spec() is not None  # delegation to the oracle

    def test_exhausted_script_falls_back_to_live_measurement(self):
        rng = np.random.default_rng(3)
        keys = [ConfigWord.random(rng) for _ in range(3)]
        live = self._oracle().snr_batch(keys)
        scripted = ScriptedOracle(self._oracle(), snrs=live[:1])
        assert scripted.snr_batch(keys) == live  # head scripted, tail live
        assert scripted.n_queries == 3

    def test_refusal_point_matches_the_live_oracle(self):
        rng = np.random.default_rng(3)
        keys = [ConfigWord.random(rng) for _ in range(5)]
        scripted = ScriptedOracle(
            self._oracle(max_queries=3), snrs=[0.0] * 5
        )
        with pytest.raises(QueryBudgetExceeded):
            scripted.snr_batch(keys)  # charge-first: refused like live
        assert scripted.n_queries == 0  # nothing served past the refusal


# ---------------------------------------------------------------------------
# The bit-exactness differential
# ---------------------------------------------------------------------------


class TestSubTaskDifferential:
    def test_brute_force_partition_sizes_and_worker_counts(self):
        """The tentpole property: one dominant brute-force cell, every
        partition size x worker count reproduces the scalar report
        byte-for-byte — including ``n_queries``."""
        reference = run_campaign([bf_cell()], n_workers=1)
        expected = report_bytes(reference.reports)
        for subtask_keys in (4, 16):
            for n_workers in (2, 4):
                result = run_campaign(
                    [bf_cell(subtask_keys=subtask_keys)], n_workers=n_workers
                )
                assert report_bytes(result.reports) == expected
                assert result.reports[0].n_queries == \
                    reference.reports[0].n_queries

    def test_partitioned_campaign_across_backends(self):
        """Partitioning composes with engine backends: per backend, the
        partitioned fleet run equals that backend's scalar run."""
        cells = [bf_cell(subtask_keys=8), ga_cell(subtask_slices=2)]
        scalar = [bf_cell(), ga_cell()]
        for backend in ("reference", "vectorized"):
            reference = run_campaign(scalar, n_workers=1, backend=backend)
            result = run_campaign(cells, n_workers=2, backend=backend)
            assert report_bytes(result.reports) == report_bytes(
                reference.reports
            )

    def test_genetic_slices_with_and_without_sfdr_blend(self):
        """Per-generation slicing preserves the GA's sequential
        semantics for both fitness shapes (SNR-only and SFDR-blended
        — the blended replay also re-charges SFDR batches)."""
        for sfdr_weight in (0.0, 0.5):
            reference = run_campaign(
                [ga_cell(sfdr_weight=sfdr_weight)], n_workers=1
            )
            expected = report_bytes(reference.reports)
            for subtask_slices in (2, 4):
                result = run_campaign(
                    [ga_cell(subtask_slices=subtask_slices,
                             sfdr_weight=sfdr_weight)],
                    n_workers=2,
                )
                assert report_bytes(result.reports) == expected

    def test_budget_refusal_point_is_identical(self):
        """A query budget below the attack budget: the partitioned run
        refuses at exactly the scalar refusal point (the report's
        exhaustion shape and ``n_queries`` match bit-for-bit)."""
        pairs = [
            (bf_cell(budget=32, max_queries=13),
             bf_cell(budget=32, max_queries=13, subtask_keys=4)),
            (ga_cell(budget=40, max_queries=19),
             ga_cell(budget=40, max_queries=19, subtask_slices=3)),
        ]
        for scalar, partitioned in pairs:
            reference = run_campaign([scalar], n_workers=1)
            result = run_campaign([partitioned], n_workers=2)
            assert report_bytes(result.reports) == report_bytes(
                reference.reports
            )
            assert result.reports[0].n_queries == \
                reference.reports[0].n_queries

    def test_mixed_campaign_with_unpartitioned_cells(self):
        """Partitioned and scalar cells interleave on one queue; cell
        order and every report survive."""
        scalar = [bf_cell(), ga_cell(), bf_cell(seed=9)]
        mixed = [bf_cell(subtask_keys=8), ga_cell(subtask_slices=2),
                 bf_cell(seed=9)]
        reference = run_campaign(scalar, n_workers=1)
        result = run_campaign(mixed, n_workers=4)
        assert report_bytes(result.reports) == report_bytes(
            reference.reports
        )

    def test_static_scheduler_runs_partitioned_cells_scalar(self):
        """The static baseline ignores partition plans (documented): a
        partitioned cell list still reproduces the scalar reports."""
        result = run_campaign(
            [bf_cell(subtask_keys=8)], n_workers=2, scheduler="static"
        )
        reference = run_campaign([bf_cell()], n_workers=1)
        assert report_bytes(result.reports) == report_bytes(
            reference.reports
        )

    def test_dominant_cell_on_the_daemon_fleet(self, daemon_factory):
        """The same differential through the daemon: partitioned cells
        become fleet sub-tasks, assembly emits one cell event each, and
        the reports match the in-process scalar run byte-for-byte."""
        scalar = (bf_cell(), ga_cell())
        cells = (bf_cell(subtask_keys=6), ga_cell(subtask_slices=2))
        reference = FoundryService().submit(
            CampaignJob(cells=scalar, n_workers=1)
        ).result()
        daemon = daemon_factory("subtask", n_workers=2)
        client = DaemonClient(socket=daemon.address)
        handle = client.submit(CampaignJob(cells=cells, n_workers=2))
        events = list(handle.stream())
        result = handle.result(timeout=600)
        assert report_bytes(result.reports) == report_bytes(
            reference.reports
        )
        # Sub-tasks are scheduler-internal: exactly one event per cell.
        assert sorted(e.kind for e in events) == ["cell", "cell"]
