"""Attack-suite tests: cost model, oracle, brute force, optimisation,
transfer, removal, SAT."""

import numpy as np
import pytest

from repro.attacks import (
    AttackCostModel,
    BruteForceAttack,
    GeneticAttack,
    MeasurementOracle,
    QueryBudgetExceeded,
    SatAttack,
    SatAttackNotApplicable,
    SimulatedAnnealingAttack,
    TransferAttack,
    assert_sat_attack_applicable,
    expected_trials,
    format_years,
    removal_attack,
    success_probability,
)
from repro.baselines import MemristorBiasLock, MixLock
from repro.locking import ProgrammabilityLock
from repro.logic import lock_netlist, parity_tree, ripple_adder


class TestCostModel:
    def test_paper_simulation_times(self):
        sim = AttackCostModel.simulation()
        assert sim.snr_seconds == 20 * 60
        assert sim.dr_sweep_seconds == 3 * 3600
        assert sim.sfdr_seconds == 30 * 60

    def test_brute_force_years_scale(self):
        # Half of 2^64 trials at 20 min each: astronomically long.
        years = AttackCostModel.simulation().brute_force_years()
        assert years > 1e14

    def test_campaign_accounting(self):
        hw = AttackCostModel.hardware()
        total = hw.campaign_seconds(n_snr=10, n_sfdr=5)
        assert total == pytest.approx(10 * hw.snr_seconds + 5 * hw.sfdr_seconds)

    def test_format_years_ranges(self):
        assert "s" in format_years(1e-9)
        assert "days" in format_years(0.5)
        assert "years" in format_years(3.0)
        assert "e6" in format_years(2.2e6)


class TestProbabilityMath:
    def test_success_probability_bounds(self):
        assert success_probability(100, 0.0) == 0.0
        assert success_probability(1, 1.0) == 1.0
        assert 0 < success_probability(10, 0.01) < 0.1

    def test_expected_trials(self):
        assert expected_trials(0.01) == pytest.approx(100.0)
        assert expected_trials(0.0) == float(1 << 64)

    def test_probability_guard(self):
        with pytest.raises(ValueError):
            success_probability(10, 1.5)


class TestOracle:
    def test_query_metering(self, hero_chip, ref_standard, correct_key):
        oracle = MeasurementOracle(chip=hero_chip, standard=ref_standard, n_fft=2048)
        oracle.snr(correct_key)
        oracle.sfdr(correct_key)
        assert oracle.n_queries == 2
        assert oracle.elapsed_seconds == pytest.approx(
            oracle.cost_model.snr_seconds + oracle.cost_model.sfdr_seconds
        )

    def test_budget_enforced(self, hero_chip, ref_standard, correct_key):
        oracle = MeasurementOracle(
            chip=hero_chip, standard=ref_standard, n_fft=2048, max_queries=2
        )
        oracle.snr(correct_key)
        oracle.snr(correct_key)
        with pytest.raises(QueryBudgetExceeded):
            oracle.snr(correct_key)

    def test_unlocks_adjudication(self, hero_chip, ref_standard, correct_key, rng):
        from repro.receiver import ConfigWord

        oracle = MeasurementOracle(chip=hero_chip, standard=ref_standard, n_fft=4096)
        assert oracle.unlocks(correct_key)
        assert not oracle.unlocks(ConfigWord.random(rng))


class TestFleetBatchMetering:
    """Metering at fleet-batch boundaries: a fleet round that charges a
    whole lot at once must refuse at exactly the query count where
    per-die charging refuses, with meters un-advanced either way."""

    def _oracle(self, hero_chip, ref_standard, max_queries):
        return MeasurementOracle(
            chip=hero_chip,
            standard=ref_standard,
            n_fft=1024,
            max_queries=max_queries,
        )

    @pytest.mark.parametrize("fleet_size", [2, 5])
    def test_budget_boundary_identical_per_die_vs_fleet(
        self, hero_chip, ref_standard, fleet_size
    ):
        # Two full fleet rounds fit; the third round's first
        # measurement is the first over-budget one either way.
        budget = 2 * fleet_size
        per_die = self._oracle(hero_chip, ref_standard, budget)
        fleet = self._oracle(hero_chip, ref_standard, budget)
        seconds = per_die.cost_model.snr_seconds

        rounds_per_die = 0
        try:
            while True:
                for _ in range(fleet_size):  # one charge per die
                    per_die.charge_batch(1, seconds)
                rounds_per_die += 1
        except QueryBudgetExceeded:
            pass

        rounds_fleet = 0
        try:
            while True:
                fleet.charge_batch(fleet_size, seconds)  # one fleet charge
                rounds_fleet += 1
        except QueryBudgetExceeded:
            pass

        # Same refusal round, same meters after refusal: the refused
        # fleet chunk charged nothing, the refused per-die measurement
        # charged nothing, and everything before them was identical.
        assert rounds_fleet == rounds_per_die == 2
        assert per_die.n_queries == fleet.n_queries == budget
        assert per_die.elapsed_seconds == fleet.elapsed_seconds
        assert per_die.remaining_queries() == fleet.remaining_queries() == 0

    def test_overrun_leaves_meters_unadvanced(self, hero_chip, ref_standard):
        oracle = self._oracle(hero_chip, ref_standard, max_queries=7)
        seconds = oracle.cost_model.snr_seconds
        oracle.charge_batch(5, seconds)
        with pytest.raises(QueryBudgetExceeded):
            oracle.charge_batch(3, seconds)  # 5 + 3 > 7: refuse atomically
        assert oracle.n_queries == 5
        assert oracle.elapsed_seconds == 5 * seconds
        # The remaining budget is still spendable after the refusal.
        oracle.charge_batch(2, seconds)
        assert oracle.n_queries == 7


class TestBruteForce:
    def test_campaign_fails_within_budget(self, hero_chip, ref_standard):
        oracle = MeasurementOracle(chip=hero_chip, standard=ref_standard, n_fft=2048)
        outcome = BruteForceAttack(oracle, rng=np.random.default_rng(2)).run(15)
        assert not outcome.success
        assert outcome.n_trials == 15
        assert outcome.best_snr_db < ref_standard.snr_spec_db
        # Even at optimistic 1 s/measurement hardware speed, the full
        # 2^64 space takes hundreds of billions of years.
        assert outcome.extrapolated_years_full_space > 1e10
        assert "failed" in outcome.summary()


class TestOptimisationAttacks:
    def test_annealing_improves_but_stalls(self, hero_chip, ref_standard):
        oracle = MeasurementOracle(chip=hero_chip, standard=ref_standard, n_fft=2048)
        attack = SimulatedAnnealingAttack(oracle, rng=np.random.default_rng(3))
        outcome = attack.run(30)
        assert not outcome.success
        assert outcome.history == sorted(outcome.history)  # best-so-far
        assert outcome.best_score < ref_standard.snr_spec_db

    def test_genetic_respects_population_budget(self, hero_chip, ref_standard):
        oracle = MeasurementOracle(chip=hero_chip, standard=ref_standard, n_fft=2048)
        attack = GeneticAttack(
            oracle, rng=np.random.default_rng(4), population_size=8
        )
        outcome = attack.run(2)
        assert oracle.n_queries <= 8 * 3
        assert not outcome.success


class TestTransferAttack:
    def test_leaked_key_is_good_start(
        self, hero_chip, second_chip, ref_standard, quick_calibration
    ):
        from repro.calibration import Calibrator

        leaked = (
            Calibrator(n_fft=2048, optimizer_passes=1, sfdr_weight=0.0)
            .calibrate(second_chip, ref_standard)
            .config
        )
        oracle = MeasurementOracle(chip=hero_chip, standard=ref_standard, n_fft=2048)
        outcome = TransferAttack(oracle, rng=np.random.default_rng(5)).run(leaked)
        # The leaked key starts far above random (random keys are < 30 dB)
        # and local search improves it further.
        assert outcome.start_snr_db > 25.0
        assert outcome.final_snr_db >= outcome.start_snr_db


class TestRemoval:
    def test_bias_scheme_vulnerable(self):
        outcome = removal_attack(MemristorBiasLock())
        assert outcome.applicable
        assert outcome.succeeds
        assert outcome.measurements_needed == 1

    def test_proposed_not_applicable(self, hero_chip, ref_standard, quick_calibration):
        from repro.baselines import ProposedFabricLock

        lock = ProgrammabilityLock(chip=hero_chip)
        lock._lut[ref_standard.index] = quick_calibration
        outcome = removal_attack(
            ProposedFabricLock(lock=lock, standard=ref_standard)
        )
        assert not outcome.applicable
        assert not outcome.succeeds


class TestSatAttack:
    def test_recovers_functional_key(self, rng):
        original = ripple_adder(3)
        locked = lock_netlist(original, 6, rng)
        attack = SatAttack(locked=locked, oracle=locked.oracle(original))
        result = attack.run()
        from repro.logic import functional_under_key

        assert functional_under_key(locked, original, result.key, 64, rng)
        assert result.n_oracle_queries <= 16

    def test_small_parity_lock(self, rng):
        original = parity_tree(6)
        locked = lock_netlist(original, 4, rng)
        result = SatAttack(locked=locked, oracle=locked.oracle(original)).run()
        from repro.logic import functional_under_key

        assert functional_under_key(locked, original, result.key, 32, rng)

    def test_not_applicable_to_fabric_lock(self, hero_chip):
        with pytest.raises(SatAttackNotApplicable):
            assert_sat_attack_applicable(ProgrammabilityLock(chip=hero_chip))

    def test_applicable_to_locked_netlist(self, rng):
        locked = lock_netlist(parity_tree(4), 2, rng)
        assert_sat_attack_applicable(locked)  # no exception

    def test_mixlock_sat_integration(self):
        scheme = MixLock(n_key_bits=6)
        result = scheme.run_sat_attack()
        assert scheme.unlocks(result.key)
