"""Integration tests: every experiment driver runs and reproduces the
paper's qualitative shapes in micro mode."""

import pytest

from repro.experiments import (
    fig07_invalid_keys,
    fig08_transient,
    fig09_receiver_snr,
    fig10_psd,
    fig11_dynamic_range,
    fig12_sfdr,
    security_optimization,
    security_sat,
    sweep_standards,
    table_attack_cost,
    table_baselines,
    table_keyspace,
)
from repro.experiments.common import ExperimentResult


def _snr_of(result: ExperimentResult, key_label: str) -> float:
    for row in result.rows:
        if row[0] == key_label:
            return row[1]
    raise AssertionError(f"row {key_label!r} missing")


@pytest.fixture(scope="module")
def fig7_result():
    return fig07_invalid_keys.run(n_keys=15, n_fft=2048)


class TestFig7:
    def test_correct_key_wins(self, fig7_result):
        correct = _snr_of(fig7_result, "correct")
        invalid = [r[1] for r in fig7_result.rows if r[2] != "correct"]
        assert correct > 38.0
        assert max(invalid) < correct - 5.0

    def test_most_invalid_below_zero(self, fig7_result):
        invalid = [r[1] for r in fig7_result.rows if r[2] != "correct"]
        assert sum(1 for s in invalid if s < 0.0) >= len(invalid) // 2

    def test_format_table_renders(self, fig7_result):
        text = fig7_result.format_table()
        assert "fig7" in text
        assert "correct" in text


class TestFig8:
    def test_bitstream_vs_analog(self):
        result = fig08_transient.run(n_samples=128)
        kinds = {row[0]: row[1] for row in result.rows}
        assert kinds["correct"] == "bitstream"
        assert kinds["deceptive"] == "analog"
        levels = {row[0]: row[2] for row in result.rows}
        assert levels["correct"] == 2
        assert levels["deceptive"] > 20


class TestFig9:
    def test_receiver_output_collapse(self):
        result = fig09_receiver_snr.run(n_keys=8, n_baseband=256)
        correct = _snr_of(result, "correct")
        invalid = [r[1] for r in result.rows if r[0] != "correct"]
        assert correct > 35.0
        assert max(invalid) < 20.0


class TestFig10:
    def test_noise_shaping_contrast(self):
        result = fig10_psd.run(n_fft=4096)
        contrast = {row[0]: row[1] for row in result.rows}
        assert contrast["correct"] > contrast["deceptive"] + 10.0


class TestFig11:
    def test_sweep_structure(self):
        result = fig11_dynamic_range.run(power_step_dbm=20.0, n_fft=2048)
        correct_rows = [r for r in result.rows if r[0] == "correct"]
        deceptive_rows = [r for r in result.rows if r[0] == "deceptive"]
        assert {r[1] for r in correct_rows} == {0, 1, 2}
        best_ok = max(r[4] for r in correct_rows)
        best_bad = max(r[4] for r in deceptive_rows)
        assert best_ok > best_bad


class TestFig12:
    def test_sfdr_gap(self):
        result = fig12_sfdr.run(n_fft=4096)
        sfdr = {row[0]: row[1] for row in result.rows}
        assert sfdr["correct"] > sfdr["deceptive"] + 10.0


class TestTables:
    def test_attack_cost_rows(self):
        result = table_attack_cost.run(n_keys=10, n_fft=2048)
        quantities = [row[0] for row in result.rows]
        assert "key space" in quantities
        assert any("brute force" in q for q in quantities)

    def test_keyspace_table(self):
        result = table_keyspace.run(distances=(1, 8), trials_per_distance=2)
        assert any("sub-keys" in str(row[0]) for row in result.rows)

    def test_baseline_table_shape(self):
        result = table_baselines.run(n_random_keys=4)
        refs = [row[0] for row in result.rows]
        assert refs[-1] == "this work"
        this_work = result.rows[-1]
        assert this_work[2] == "no"  # no added hardware
        assert this_work[3] == 0.0  # zero area overhead
        # Every prior scheme added hardware.
        assert all(row[2] == "yes" for row in result.rows[:-1])

    def test_standard_sweep(self):
        result = sweep_standards.run(standard_indices=(0,), n_keys=4, n_fft=2048)
        for row in result.rows:
            assert row[2] > 38.0  # correct key functional
            assert row[5] == 0  # no invalid key survives adjudication


class TestSecurityExperiments:
    def test_sat_experiment(self):
        result = security_sat.run(n_key_bits=5)
        outcomes = {row[0]: row[1] for row in result.rows}
        assert any("key recovered" in v for v in outcomes.values())
        this_work = [v for k, v in outcomes.items() if "this work" in k][0]
        assert "not applicable" in this_work

    def test_optimization_experiment(self):
        result = security_optimization.run(budget=20, n_fft=2048)
        rows = {row[0]: row for row in result.rows}
        calibration_row = rows["legitimate calibration (secret algorithm)"]
        assert calibration_row[3] is True or calibration_row[3] == True  # noqa: E712
        brute = rows["brute force"]
        assert brute[3] in (False, "False", 0)
