"""Differential harness: fleet-lockstep calibration is bit-exact.

The fleet calibrator regroups per-die engine requests across a lot —
one fused batch per lockstep round — and claims the regrouping changes
*nothing* per die: not the key, not the scores, not the step log, not
the metered measurement count.  This file holds that claim
differentially against the pure sequential :class:`Calibrator`
(``batch_probing=False`` — no speculation, no batching, the scalar
ground truth) over every combination of fleet size, mixed standards,
engine backend and kernel thread count, which transitively also proves
the fleet path bit-exact across backends and thread counts.
"""

import pytest

from repro.calibration import (
    CalibrationFailed,
    Calibrator,
    FleetCalibrator,
    metering,
)
from repro.engine import get_default_engine
from repro.process import ChipFactory
from repro.receiver import Chip, STANDARDS

#: Fast-but-real calibrator settings shared by both sides of every
#: differential comparison (the full default procedure is exercised by
#: the campaign provisioning tests and the benchmarks).
CAL_KW = dict(n_fft=1024, optimizer_passes=1, sfdr_weight=0.0)

LOT_SEED = 2020

#: Per-die standard indices for the largest fleet — deliberately mixed,
#: so lockstep rounds fuse requests of different clocks and targets.
STANDARD_PATTERN = (0, 1, 0, 2, 1)

#: The pristine frequency meter, captured before any test patches it.
_REAL_METER = metering.oscillation_frequency


def _fleet(n_dies: int) -> tuple[list[Chip], list]:
    fab = ChipFactory(lot_seed=LOT_SEED)
    chips = [Chip(variations=fab.draw(die)) for die in range(n_dies)]
    standards = [STANDARDS[i] for i in STANDARD_PATTERN[:n_dies]]
    return chips, standards


@pytest.fixture(scope="module")
def sequential_baseline():
    """Lazy per-(die, standard) ground truth: the scalar sequential
    calibrator, run once on the session's default backend."""
    cache = {}

    def get(die: int, standard_index: int):
        key = (die, standard_index)
        if key not in cache:
            chip = Chip(variations=ChipFactory(lot_seed=LOT_SEED).draw(die))
            cache[key] = Calibrator(batch_probing=False, **CAL_KW).calibrate(
                chip, STANDARDS[standard_index]
            )
        return cache[key]

    return get


class TestFleetMatchesSequential:
    """The tentpole exactness property, over every axis combination."""

    @pytest.mark.parametrize("threads", ["1", "4"])
    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    @pytest.mark.parametrize("n_dies", [1, 2, 5])
    def test_fleet_bit_identical(
        self, n_dies, backend, threads, sequential_baseline, monkeypatch
    ):
        monkeypatch.setenv("REPRO_ENGINE_THREADS", threads)
        chips, standards = _fleet(n_dies)
        engine = get_default_engine()
        previous = engine.backend
        engine.backend = backend
        try:
            fleet = FleetCalibrator(**CAL_KW).calibrate_fleet(chips, standards)
        finally:
            engine.backend = previous
        assert len(fleet) == n_dies
        for die, result in enumerate(fleet):
            expected = sequential_baseline(die, STANDARD_PATTERN[die])
            # The secret key, bit for bit.
            assert result.config == expected.config
            # Every score and measured figure, exactly.
            assert result.snr_db == expected.snr_db
            assert result.sfdr_db == expected.sfdr_db
            assert result.achieved_frequency == expected.achieved_frequency
            assert result.success == expected.success
            # The step log, entry for entry (step-6/7/14 values included).
            assert result.log == expected.log
            # The metered measurement count.
            assert result.n_measurements == expected.n_measurements
            assert result.segment_gains == expected.segment_gains
            assert result.standard == expected.standard

    def test_fleet_of_same_die_twice_is_consistent(self):
        """Duplicated dies in one lot calibrate to identical results
        (the lockstep driver must not cross-contaminate machines)."""
        fab = ChipFactory(lot_seed=LOT_SEED)
        chips = [Chip(variations=fab.draw(0)), Chip(variations=fab.draw(0))]
        first, second = FleetCalibrator(**CAL_KW).calibrate_fleet(
            chips, STANDARDS[0]
        )
        assert first.config == second.config
        assert first.log == second.log
        assert first.n_measurements == second.n_measurements

    def test_single_standard_broadcasts(self):
        chips, _ = _fleet(2)
        results = FleetCalibrator(**CAL_KW).calibrate_fleet(
            chips, STANDARDS[0]
        )
        assert [r.standard for r in results] == [STANDARDS[0]] * 2

    def test_standard_count_mismatch_rejected(self):
        chips, _ = _fleet(2)
        with pytest.raises(ValueError, match="2 chips got 1 standards"):
            FleetCalibrator(**CAL_KW).calibrate_fleet(chips, [STANDARDS[0]])

    def test_empty_fleet(self):
        assert FleetCalibrator(**CAL_KW).calibrate_fleet([], []) == []


class TestFleetDeadDie:
    """The dead-die path: explicit, typed, and identical at fleet level."""

    def _kill_after(self, monkeypatch, n_good: int):
        calls = []

        def flaky(samples, fs):
            calls.append(1)
            if len(calls) > n_good:
                return None
            return _REAL_METER(samples, fs)

        def flaky_batch(records, fs):
            # The fleet's fused decode meters records in the same
            # active-die order the per-probe decodes ran in, so
            # injecting per record here keeps the failure point
            # identical to the scalar meter's.
            records = list(records)
            fss = [fs] * len(records) if not hasattr(fs, "__len__") else fs
            return [flaky(r, f) for r, f in zip(records, fss)]

        monkeypatch.setattr(metering, "oscillation_frequency", flaky)
        monkeypatch.setattr(
            metering, "oscillation_frequency_batch", flaky_batch
        )

    def test_mid_bisection_death_raises_typed_failure(self, monkeypatch):
        self._kill_after(monkeypatch, 3)
        chips, standards = _fleet(2)
        with pytest.raises(CalibrationFailed) as excinfo:
            FleetCalibrator(**CAL_KW).calibrate_fleet(chips, standards)
        failure = excinfo.value
        assert failure.step == 6
        assert failure.chip_id in (0, 1)
        # The audit trail up to the failure rides the exception.
        assert [entry.step for entry in failure.log] == [1, 2, 3, 4, 5]

    def test_fleet_failure_matches_sequential_failure(self, monkeypatch):
        """The same die dies at the same point either way."""
        chips, standards = _fleet(1)
        self._kill_after(monkeypatch, 5)
        with pytest.raises(CalibrationFailed) as sequential:
            Calibrator(batch_probing=False, **CAL_KW).calibrate(
                chips[0], standards[0]
            )
        self._kill_after(monkeypatch, 5)
        with pytest.raises(CalibrationFailed) as fleet:
            FleetCalibrator(**CAL_KW).calibrate_fleet(chips, standards)
        assert fleet.value.step == sequential.value.step == 6
        assert fleet.value.chip_id == sequential.value.chip_id == 0
        assert fleet.value.log == sequential.value.log


class TestProvisionFleet:
    """Campaign pre-provisioning rides the lockstep path."""

    def test_skips_stored_triples_and_tags_fleet_events(self, tmp_path):
        from repro.campaigns import provision_fleet
        from repro.engine import CalibrationStore

        store = CalibrationStore(tmp_path / "store")
        sentinel = {"already": "stored"}
        store.put((LOT_SEED, 0, 0), sentinel)
        computed = provision_fleet(
            [(LOT_SEED, 0, 0), (LOT_SEED, 1, 0)], store
        )
        assert computed == 1  # the stored triple was skipped
        assert store.get((LOT_SEED, 0, 0)) == sentinel
        fresh = store.get((LOT_SEED, 1, 0))
        # The fleet-stored value is the design-house default calibration.
        chip = Chip(variations=ChipFactory(lot_seed=LOT_SEED).draw(1))
        expected = Calibrator().calibrate(chip, STANDARDS[0])
        assert fresh.config == expected.config
        assert fresh.log == expected.log
        assert fresh.n_measurements == expected.n_measurements
        events = store.compute_events()
        # One audit line per computed die (the skip logged nothing new
        # beyond the sentinel put), tagged as a fleet compute.
        assert len(events) == 2
        assert events[-1].endswith(" fleet")

    def test_noop_when_everything_stored(self, tmp_path):
        from repro.campaigns import provision_fleet
        from repro.engine import CalibrationStore

        store = CalibrationStore(tmp_path / "store")
        store.put((LOT_SEED, 3, 0), "anything")
        assert provision_fleet([(LOT_SEED, 3, 0)], store) == 0

    def test_completed_dies_survive_a_mid_lot_failure(
        self, tmp_path, monkeypatch
    ):
        """Streaming durability: a die that fails mid-lot must not
        discard dies already calibrated — a retry resumes warm."""
        from repro.calibration import procedure
        from repro.campaigns import provision_fleet
        from repro.engine import CalibrationStore

        real_plan = procedure.segment_gain_plan
        completions = []

        def dies_at_completion(chip):
            # The third die to reach its final step fails there; the
            # two dies that completed before it have already streamed
            # into the store.
            completions.append(chip.chip_id)
            if len(completions) == 3:
                raise RuntimeError("probe card slipped")
            return real_plan(chip)

        monkeypatch.setattr(procedure, "segment_gain_plan", dies_at_completion)
        store = CalibrationStore(tmp_path / "store")
        with pytest.raises(RuntimeError, match="probe card"):
            provision_fleet(
                [(LOT_SEED, die, 0) for die in range(5)], store
            )
        # Exactly the dies that completed before the failure survive.
        survivors = [
            die
            for die in range(5)
            if store.get((LOT_SEED, die, 0)) is not None
        ]
        assert sorted(completions[:2]) == survivors
        events = store.compute_events()
        assert len(events) == 2
        assert all(event.endswith(" fleet") for event in events)
