"""Sigma-delta modulator engine tests: modulation, noise shaping,
loop-topology enables, oscillation mode, determinism."""

import numpy as np
import pytest

from repro.dsp import periodogram
from repro.receiver import (
    Chip,
    ConfigWord,
    STANDARDS,
    ToneStimulus,
    measure_modulator_snr,
    oscillation_config,
    signal_band,
    stimulus_frequency,
)

STD = STANDARDS[0]
N = 2048


@pytest.fixture(scope="module")
def chip():
    return Chip()


@pytest.fixture(scope="module")
def working_key(chip):
    tank = chip.blocks.tank
    # Direct synthesis of a working configuration on the typical chip.
    best = min(
        ((cc, cf) for cc in range(0, 16) for cf in range(0, 256, 8)),
        key=lambda p: abs(tank.resonance_frequency(*p) - STD.f_center),
    )
    gmq = tank.critical_gmq_code(*best) - 1
    return ConfigWord(
        lna_gain=7,
        cc_coarse=best[0],
        cf_fine=best[1],
        gmq_code=gmq,
        gmin_code=24,
        preamp_code=20,
        comp_code=31,
        dac_code=32,
        delay_code=12,
        buffer_code=4,
    )


def _stim(n=N):
    return ToneStimulus.single(stimulus_frequency(STD, 64, n), -25.0)


class TestModulation:
    def test_bitstream_is_two_level(self, chip, working_key):
        res = chip.simulate_modulator(working_key, _stim(), STD.fs, n_samples=N)
        assert res.is_bitstream
        assert set(np.unique(res.bits)) == {-1.0, 1.0}

    def test_working_key_snr(self, chip, working_key):
        m = measure_modulator_snr(chip, working_key, STD, n_fft=4096, seed=1)
        assert m.snr_db > 38.0

    def test_noise_shaping_notch(self, chip, working_key):
        res = chip.simulate_modulator(
            working_key.replace(gmin_en=0), ToneStimulus.off(), STD.fs, n_samples=8192
        )
        spec = periodogram(res.output, STD.fs)
        f_lo, f_hi = signal_band(STD, 64)
        width = f_hi - f_lo
        inband = spec.band_power(f_lo, f_hi)
        shoulder = spec.band_power(f_hi + 2 * width, f_hi + 3 * width)
        assert 10 * np.log10(shoulder / inband) > 10.0

    def test_deterministic_given_seed(self, chip, working_key):
        a = chip.simulate_modulator(working_key, _stim(), STD.fs, n_samples=256, seed=5)
        b = chip.simulate_modulator(working_key, _stim(), STD.fs, n_samples=256, seed=5)
        assert np.array_equal(a.output, b.output)

    def test_seed_changes_noise(self, chip, working_key):
        a = chip.simulate_modulator(working_key, _stim(), STD.fs, n_samples=256, seed=5)
        b = chip.simulate_modulator(working_key, _stim(), STD.fs, n_samples=256, seed=6)
        assert not np.array_equal(a.output, b.output)


class TestLoopTopologyEnables:
    def test_gmin_disabled_kills_signal(self, chip, working_key):
        f_sig = stimulus_frequency(STD, 64, 4096)
        m = measure_modulator_snr(
            chip, working_key.replace(gmin_en=0), STD, n_fft=4096, seed=1
        )
        assert m.snr_db < 0.0

    def test_buffer_mode_output_is_analog(self, chip, working_key):
        res = chip.simulate_modulator(
            working_key.replace(comp_clk_en=0), _stim(), STD.fs, n_samples=N
        )
        assert not res.is_bitstream
        assert np.unique(res.output).size > 100

    def test_open_loop_degrades_snr(self, chip, working_key):
        m_closed = measure_modulator_snr(chip, working_key, STD, n_fft=2048, seed=1)
        m_open = measure_modulator_snr(
            chip, working_key.replace(fb_en=0), STD, n_fft=2048, seed=1
        )
        assert m_open.snr_db < m_closed.snr_db - 10.0

    def test_wrong_delay_breaks_loop(self, chip, working_key):
        # tau = 0 (undelayed NRZ feedback) mis-phases the fs/4 loop.
        m = measure_modulator_snr(
            chip, working_key.replace(delay_code=0), STD, n_fft=2048, seed=1
        )
        assert m.snr_db < 10.0

    def test_detuned_caps_degrade(self, chip, working_key):
        wrong = working_key.replace(cc_coarse=200)
        m = measure_modulator_snr(chip, wrong, STD, n_fft=2048, seed=1)
        assert m.snr_db < 10.0


class TestOscillationMode:
    def test_oscillates_at_max_gmq(self, chip, working_key):
        res = chip.simulate_oscillation(working_key, STD.fs, n_samples=2048)
        tail = res.output[1024:]
        assert np.std(tail) > 0.05

    def test_oscillation_frequency_tracks_caps(self, chip, working_key):
        from repro.calibration import oscillation_frequency

        for cc in (10, 100):
            res = chip.simulate_oscillation(
                working_key.replace(cc_coarse=cc), STD.fs, n_samples=4096
            )
            f_meas = oscillation_frequency(res.output[2048:], STD.fs)
            f_expect = chip.blocks.tank.resonance_frequency(cc, working_key.cf_fine)
            assert f_meas == pytest.approx(f_expect, rel=0.02)

    def test_no_oscillation_below_critical(self, chip, working_key):
        critical = chip.blocks.tank.critical_gmq_code(
            working_key.cc_coarse, working_key.cf_fine
        )
        res = chip.simulate_oscillation(
            working_key, STD.fs, n_samples=2048, gmq_code=max(critical - 3, 0)
        )
        assert np.std(res.output[1024:]) < 0.05

    def test_oscillation_config_topology(self, working_key):
        osc = oscillation_config(working_key)
        assert osc.comp_clk_en == 0
        assert osc.gmin_en == 0
        assert osc.fb_en == 0
        assert osc.gmq_code == 63


class TestGuards:
    def test_bad_n_samples(self, chip, working_key):
        with pytest.raises(ValueError):
            chip.simulate_modulator(working_key, _stim(), STD.fs, n_samples=0)

    def test_bad_substeps(self, chip, working_key):
        with pytest.raises(ValueError):
            chip.simulate_modulator(
                working_key, _stim(), STD.fs, n_samples=16, substeps=1
            )
