"""Unit-conversion tests: dBm/volt/watt identities and guards."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.dsp import units


def test_dbm_to_watt_known_points():
    assert units.dbm_to_watt(0.0) == pytest.approx(1e-3)
    assert units.dbm_to_watt(30.0) == pytest.approx(1.0)
    assert units.dbm_to_watt(-30.0) == pytest.approx(1e-6)


def test_watt_to_dbm_inverse():
    assert units.watt_to_dbm(1e-3) == pytest.approx(0.0)


def test_watt_to_dbm_rejects_nonpositive():
    with pytest.raises(ValueError):
        units.watt_to_dbm(0.0)


def test_dbm_to_vamp_paper_stimulus():
    # -25 dBm in 50 ohm is a ~17.8 mV amplitude sinusoid.
    assert units.dbm_to_vamp(-25.0) == pytest.approx(17.78e-3, rel=1e-3)


def test_vrms_vs_vamp_sqrt2():
    assert units.dbm_to_vamp(-10.0) == pytest.approx(
        units.dbm_to_vrms(-10.0) * math.sqrt(2.0)
    )


@given(st.floats(min_value=-80.0, max_value=30.0))
def test_dbm_vamp_roundtrip(dbm):
    assert units.vamp_to_dbm(units.dbm_to_vamp(dbm)) == pytest.approx(dbm, abs=1e-9)


@given(st.floats(min_value=1e-12, max_value=1e6))
def test_db_undb_roundtrip(ratio):
    assert units.undb(units.db(ratio)) == pytest.approx(ratio, rel=1e-9)


@given(st.floats(min_value=1e-6, max_value=1e6))
def test_db_amplitude_is_twice_power_db(ratio):
    assert units.db_amplitude(ratio) == pytest.approx(2.0 * units.db(ratio), rel=1e-9)


def test_db_rejects_nonpositive():
    with pytest.raises(ValueError):
        units.db(0.0)
    with pytest.raises(ValueError):
        units.db_amplitude(-1.0)


def test_thermal_noise_power_ktb():
    # kTB at 290 K over 1 Hz is ~4.0e-21 W (-174 dBm/Hz).
    p = units.thermal_noise_power(1.0)
    assert units.watt_to_dbm(p) == pytest.approx(-173.98, abs=0.05)


def test_thermal_noise_rejects_negative_bandwidth():
    with pytest.raises(ValueError):
        units.thermal_noise_power(-1.0)
