"""Foundry-daemon tests: wire protocol, the daemon differential guard
(a daemon campaign is bit-identical to the in-process service across
backends and worker counts), tenant quotas (same per-tenant refusal
counts shared or isolated, meters un-advanced), the job lifecycle over
the wire (cancel mid-stream, FAILED propagation, PENDING admission),
startup lock sweeping, and SIGTERM drain/restart resume."""

import os
import pickle
import signal
import socket as socket_module
import subprocess
import sys
import tempfile
import time
import uuid

import pytest

from repro.campaigns import CampaignCell, ChipSpec, ThreatScenario
from repro.engine import CalibrationStore
from repro.service import (
    CampaignJob,
    DaemonClient,
    DaemonUnavailable,
    ExperimentJob,
    FoundryDaemon,
    FoundryService,
    JobCancelled,
    JobFailed,
    JobStatus,
    ProvisioningJob,
    TenantConfig,
    TenantMeter,
    parse_tenant_spec,
)
from repro.service.client import DaemonUnavailableError
from repro.service.protocol import (
    ProtocolError,
    decode_payload,
    encode_payload,
    event_from_wire,
    event_to_wire,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.service.jobs import TaskEvent

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def oracle_cells(n: int = 4, budget: int = 6) -> tuple:
    """Cheap oracle-only cells (no calibration in the loop)."""
    base = ThreatScenario(budget=budget, n_fft=1024, seed=5)
    return tuple(CampaignCell("brute-force", base.with_(seed=s)) for s in range(n))


def fleet_cells() -> tuple:
    """Gated fabric cells on two dies plus an oracle cell — exercises
    provisioning gating on the fleet path."""
    base = ThreatScenario(budget=6, n_fft=1024, seed=5)
    return (
        CampaignCell("removal", base.with_(chip=ChipSpec(chip_id=0))),
        CampaignCell("brute-force", base),
        CampaignCell("removal", base.with_(chip=ChipSpec(chip_id=1))),
    )


def short_socket() -> str:
    """A socket path short enough for AF_UNIX (pytest tmp_path is not)."""
    return os.path.join(
        tempfile.gettempdir(), f"repro-{uuid.uuid4().hex[:10]}.sock"
    )


@pytest.fixture
def daemon_factory(tmp_path):
    """Start daemons on short sockets and always stop them."""
    started = []

    def factory(tag="d", **kwargs):
        kwargs.setdefault("n_workers", 2)
        daemon = FoundryDaemon(
            tmp_path / tag, socket=short_socket(), **kwargs
        )
        daemon.start()
        started.append(daemon)
        return daemon

    yield factory
    for daemon in started:
        daemon.stop()


def report_bytes(reports) -> list:
    """Per-report pickle bytes: the byte-for-byte identity the guards
    compare.  (Pickling the whole list is not canonical — an in-process
    run's reports can share substructure across cells, which changes
    the pickle memo; each report's own bytes are stable.)"""
    return [pickle.dumps(pickle.loads(pickle.dumps(r))) for r in reports]


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_payload_roundtrip_is_bitexact(self):
        cells = oracle_cells(2)
        assert decode_payload(encode_payload(cells)) == cells
        text = encode_payload(cells)
        assert pickle.dumps(decode_payload(text)) == pickle.dumps(
            decode_payload(text)
        )

    def test_frame_roundtrip_over_socketpair(self):
        a, b = socket_module.socketpair()
        try:
            send_frame(a, {"op": "submit", "payload": encode_payload([1, 2])})
            frame = recv_frame(b)
            assert frame["op"] == "submit"
            assert decode_payload(frame["payload"]) == [1, 2]
            a.close()
            assert recv_frame(b) is None  # clean EOF
        finally:
            b.close()

    def test_torn_frame_raises_protocol_error(self):
        a, b = socket_module.socketpair()
        try:
            a.sendall(b"\x00\x00\x00\xff{")  # header promises 255 bytes
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_frame_refused(self):
        a, b = socket_module.socketpair()
        try:
            a.sendall(b"\xff\xff\xff\xff")
            with pytest.raises(ProtocolError, match="cap"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_parse_address(self):
        assert parse_address("/tmp/x.sock") == ("unix", "/tmp/x.sock")
        assert parse_address("relative.sock") == ("unix", "relative.sock")
        assert parse_address("localhost:7070") == ("tcp", ("localhost", 7070))
        assert parse_address("10.0.0.2:80") == ("tcp", ("10.0.0.2", 80))
        # A path with a colon is still a path.
        assert parse_address("/tmp/odd:name")[0] == "unix"
        with pytest.raises(ValueError, match="empty"):
            parse_address("")

    def test_event_wire_roundtrip(self):
        event = TaskEvent("cell", "brute@x", 3, {"snr": 1.25}, 0.5)
        assert event_from_wire(event_to_wire(event)) == event


class TestTenantVocabulary:
    def test_parse_tenant_spec(self):
        assert parse_tenant_spec("acme") == TenantConfig("acme")
        assert parse_tenant_spec("acme=5") == TenantConfig("acme", priority=5)
        assert parse_tenant_spec("acme=5:200") == TenantConfig(
            "acme", priority=5, max_queries=200
        )
        assert parse_tenant_spec("acme=:200") == TenantConfig(
            "acme", max_queries=200
        )
        with pytest.raises(ValueError, match="malformed"):
            parse_tenant_spec("acme=high")
        with pytest.raises(ValueError, match="non-empty"):
            parse_tenant_spec("=1")

    def test_meter_admits_or_refuses_whole_chunks(self, tmp_path):
        from repro.attacks.oracle import QueryBudgetExceeded

        meter = TenantMeter(tmp_path / "m.count", max_queries=10, tenant="t")
        meter.charge_batch(6)
        assert meter.n_queries() == 6
        with pytest.raises(QueryBudgetExceeded, match="quota"):
            meter.charge_batch(5)  # would reach 11
        assert meter.n_queries() == 6  # refusal left the meter un-advanced
        meter.charge_batch(4)  # exactly to the cap is admitted
        assert meter.n_queries() == 10
        with pytest.raises(ValueError):
            meter.charge_batch(-1)

    def test_oracle_writes_through_installed_meter(self, tmp_path):
        from repro.attacks.oracle import (
            QueryBudgetExceeded,
            current_tenant_meter,
            install_tenant_meter,
        )
        from repro.attacks import MeasurementOracle

        meter = TenantMeter(tmp_path / "m.count", max_queries=8)
        install_tenant_meter(meter)
        try:
            assert current_tenant_meter() is meter
            scenario = ThreatScenario(budget=20, n_fft=1024, seed=5)
            oracle = scenario.oracle()
            oracle.charge_batch(5, 1.0)
            assert (oracle.n_queries, meter.n_queries()) == (5, 5)
            # Tenant refusal leaves BOTH meters un-advanced.
            with pytest.raises(QueryBudgetExceeded, match="quota"):
                oracle.charge_batch(4, 1.0)
            assert (oracle.n_queries, meter.n_queries()) == (5, 5)
            assert oracle.elapsed_seconds == 5.0
        finally:
            install_tenant_meter(None)


# ---------------------------------------------------------------------------
# The daemon differential guard
# ---------------------------------------------------------------------------


class TestDaemonDifferential:
    def test_campaign_bitidentical_across_backends_and_workers(
        self, daemon_factory
    ):
        """The acceptance property: a daemon campaign reproduces the
        in-process service's reports byte-for-byte, per backend, for
        1/2/4-worker jobs on one shared fleet."""
        cells = oracle_cells(4)
        daemon = daemon_factory("diff", n_workers=4)
        client = DaemonClient(socket=daemon.address)
        for backend in ("reference", "vectorized"):
            reference = FoundryService().submit(
                CampaignJob(cells=cells, n_workers=1, backend=backend)
            ).result()
            expected = report_bytes(reference.reports)
            for n_workers in (1, 2, 4):
                handle = client.submit(
                    CampaignJob(cells=cells, n_workers=n_workers,
                                backend=backend)
                )
                result = handle.result(timeout=600)
                assert result.reports == reference.reports
                assert report_bytes(result.reports) == expected

    def test_gated_campaign_and_shared_store(self, daemon_factory, tmp_path):
        """Provisioning-gated cells run on the fleet (calibrations land
        in the daemon-wide store) and match the in-process run; a second
        job reuses the calibrations instead of recomputing."""
        cells = fleet_cells()
        store = str(tmp_path / "refstore")
        reference = FoundryService().submit(
            CampaignJob(cells=cells, n_workers=1, calibration_store=store)
        ).result()
        daemon = daemon_factory("gated", n_workers=2)
        client = DaemonClient(socket=daemon.address)
        result = client.submit(
            CampaignJob(cells=cells, n_workers=2)
        ).result(timeout=600)
        assert result.reports == reference.reports
        assert report_bytes(result.reports) == report_bytes(reference.reports)
        events_before = len(
            CalibrationStore(daemon.store_path()).compute_events()
        )
        assert events_before >= 2  # both dies calibrated into the store
        # A different job over the same dies: store hits, no recompute.
        again = client.submit(
            CampaignJob(cells=cells[:1], n_workers=1)
        ).result(timeout=600)
        assert again.reports == reference.reports[:1]
        assert len(
            CalibrationStore(daemon.store_path()).compute_events()
        ) == events_before

    def test_provisioning_and_experiment_jobs(self, daemon_factory, tmp_path):
        daemon = daemon_factory("jobs", n_workers=2)
        client = DaemonClient(socket=daemon.address)
        store = str(tmp_path / "provstore")
        triples = ((11, 0, 0), (11, 1, 0))
        handle = client.submit(
            ProvisioningJob(triples=triples, calibration_store=store,
                            n_workers=2)
        )
        assert handle.result(timeout=600) == 2
        assert len(CalibrationStore(store)) == 2
        # Resubmission: everything already provisioned.
        fresh = client.submit(
            ProvisioningJob(triples=triples, calibration_store=store,
                            n_workers=1), job_id="prov-again",
        )
        assert fresh.result(timeout=600) == 0
        # Experiment jobs run on the fleet, registry order.
        names = ("tab-keys", "tab-ovr")
        reference = FoundryService().submit(
            ExperimentJob(names=names)
        ).result()
        remote = client.submit(ExperimentJob(names=names)).result(timeout=600)
        assert [r.experiment_id for r in remote] == [
            r.experiment_id for r in reference
        ]
        assert [r.rows for r in remote] == [r.rows for r in reference]


# ---------------------------------------------------------------------------
# Tenant quotas through the daemon
# ---------------------------------------------------------------------------


class TestTenantQuotas:
    def test_shared_daemon_refuses_at_isolated_counts(self, daemon_factory):
        """Two tenants sharing one daemon hit their quotas at exactly
        the per-tenant query counts of isolated single-tenant runs, and
        a refused chunk advances no meter."""
        cells = oracle_cells(3)  # each cell wants 6 queries; quota 10
        job = CampaignJob(cells=cells, n_workers=1)  # serial => determinism
        quota = 10
        isolated = {}
        for tenant in ("acme", "initech"):
            daemon = daemon_factory(
                f"iso-{tenant}", n_workers=2,
                tenants=[TenantConfig(tenant, max_queries=quota)],
            )
            client = DaemonClient(socket=daemon.address, tenant=tenant)
            isolated[tenant] = client.submit(job).result(timeout=600)
            assert daemon.tenant_meter(tenant).n_queries() == 6
        shared = daemon_factory(
            "shared", n_workers=2,
            tenants=[TenantConfig("acme", max_queries=quota),
                     TenantConfig("initech", max_queries=quota)],
        )
        handles = [
            DaemonClient(socket=shared.address, tenant=tenant).submit(job)
            for tenant in ("acme", "initech")
        ]
        results = [handle.result(timeout=600) for handle in handles]
        for tenant, result in zip(("acme", "initech"), results):
            assert result.reports == isolated[tenant].reports
            assert report_bytes(result.reports) == report_bytes(
                isolated[tenant].reports
            )
            # Refusal pattern: first cell spends its 6, the next two
            # are refused whole (6+6 > 10) with nothing advanced.
            flags = [r.extras.get("budget_exhausted", False)
                     for r in result.reports]
            assert flags == [False, True, True]
            assert [r.n_queries for r in result.reports] == [6, 0, 0]
            assert shared.tenant_meter(tenant).n_queries() == 6

    def test_unlimited_tenant_is_metered_but_never_refused(
        self, daemon_factory
    ):
        daemon = daemon_factory("unlim", n_workers=2)
        client = DaemonClient(socket=daemon.address, tenant="free")
        result = client.submit(
            CampaignJob(cells=oracle_cells(2), n_workers=1)
        ).result(timeout=600)
        assert not any(
            r.extras.get("budget_exhausted") for r in result.reports
        )
        assert daemon.tenant_meter("free").n_queries() == 12


# ---------------------------------------------------------------------------
# Lifecycle over the wire
# ---------------------------------------------------------------------------


class TestDaemonLifecycle:
    def test_status_transitions_and_pending_admission(self, daemon_factory):
        """The full transition graph through the daemon path: PENDING
        (queued behind max_active) -> RUNNING -> COMPLETED, plus
        priority-ordered admission."""
        daemon = daemon_factory("adm", n_workers=1, max_active=1,
                                tenants=[TenantConfig("vip", priority=9)])
        client = DaemonClient(socket=daemon.address)
        vip = DaemonClient(socket=daemon.address, tenant="vip")
        first = client.submit(CampaignJob(cells=oracle_cells(2), n_workers=1))
        queued = client.submit(
            CampaignJob(cells=oracle_cells(1, budget=3), n_workers=1)
        )
        priority = vip.submit(
            CampaignJob(cells=oracle_cells(1, budget=2), n_workers=1)
        )
        statuses = {queued.status(), priority.status(), first.status()}
        assert JobStatus.PENDING in statuses  # max_active=1 queues the rest
        assert first.result(timeout=600) is not None
        assert priority.wait(timeout=600) and queued.wait(timeout=600)
        for handle in (first, queued, priority):
            assert handle.status() is JobStatus.COMPLETED
        # The VIP submission was admitted before the earlier default-
        # priority one: its runner observed a less-complete queue.
        jobs = client.jobs()["jobs"]
        assert jobs[priority.job_id]["status"] == "completed"

    def test_cancel_mid_stream_over_wire(self, daemon_factory):
        daemon = daemon_factory("cancel", n_workers=1)
        client = DaemonClient(socket=daemon.address)
        handle = client.submit(
            CampaignJob(cells=oracle_cells(6, budget=12), n_workers=1)
        )
        delivered = 0
        for event in handle.stream():
            delivered += 1
            if delivered == 2:
                assert handle.cancel() is True
        # The stream simply ends; the job stopped at a task boundary.
        assert 2 <= delivered < 6
        assert handle.status() is JobStatus.CANCELLED
        with pytest.raises(JobCancelled):
            handle.result()
        assert handle.cancel() is False  # already terminal
        # Finished cells stayed journaled: resubmitting the identical
        # job resumes from them (replay events) instead of re-running.
        resumed = client.submit(
            CampaignJob(cells=oracle_cells(6, budget=12), n_workers=1)
        )
        kinds = [event.kind for event in resumed.stream()]
        assert kinds.count("replay") >= 2
        assert resumed.status() is JobStatus.COMPLETED

    def test_cancel_queued_job_never_runs(self, daemon_factory):
        daemon = daemon_factory("cq", n_workers=1, max_active=1)
        client = DaemonClient(socket=daemon.address)
        running = client.submit(CampaignJob(cells=oracle_cells(2),
                                            n_workers=1))
        queued = client.submit(
            CampaignJob(cells=oracle_cells(3, budget=3), n_workers=1)
        )
        assert queued.cancel() is True
        assert queued.status() is JobStatus.CANCELLED
        assert list(queued.stream()) == []  # nothing ever ran
        running.result(timeout=600)

    def test_worker_failure_propagates_over_wire(self, daemon_factory):
        """FAILED end-to-end: the fleet worker's exception reaches the
        remote handle as JobFailed naming the failing task, result()
        keeps raising it, and late stream consumers see it too."""
        daemon = daemon_factory("fail", n_workers=2)
        client = DaemonClient(socket=daemon.address)
        cells = oracle_cells(1) + (
            CampaignCell("brute-force", ThreatScenario(scheme="adamantium")),
        )
        handle = client.submit(CampaignJob(cells=cells, n_workers=2))
        with pytest.raises(JobFailed, match="adamantium"):
            handle.result(timeout=600)
        assert handle.status() is JobStatus.FAILED
        with pytest.raises(JobFailed, match="adamantium"):
            handle.result()
        with pytest.raises(JobFailed, match="adamantium"):
            list(handle.stream())
        # The daemon survives its jobs' failures.
        ok = client.submit(CampaignJob(cells=oracle_cells(1), n_workers=1))
        ok.result(timeout=600)

    def test_result_timeout_leaves_job_running(self, daemon_factory):
        daemon = daemon_factory("t", n_workers=1, max_active=1)
        client = DaemonClient(socket=daemon.address)
        blocker = client.submit(
            CampaignJob(cells=oracle_cells(4, budget=24), n_workers=1)
        )
        # Queued behind the blocker: not terminal, so a zero timeout
        # must report TimeoutError rather than a result.
        handle = client.submit(
            CampaignJob(cells=oracle_cells(3, budget=12), n_workers=1)
        )
        with pytest.raises(TimeoutError, match="result\\(\\) again"):
            handle.result(timeout=0)
        assert handle.wait(timeout=600) is True
        assert handle.result() is not None  # a timeout never cancelled it
        blocker.result(timeout=600)

    def test_concurrent_streams_replay_full_log(self, daemon_factory):
        """The documented stream contract over the wire: concurrent
        consumers each replay the complete event log — events are never
        split between them."""
        daemon = daemon_factory("streams", n_workers=1)
        client = DaemonClient(socket=daemon.address)
        handle = client.submit(CampaignJob(cells=oracle_cells(3),
                                           n_workers=1))
        first = handle.stream()
        second = handle.stream()
        interleaved = list(zip(first, second))  # strictly alternating
        assert len(interleaved) == 3
        for a, b in interleaved:
            assert a == b
        late = list(client.handle(handle.job_id).stream())
        assert late == [a for a, _ in interleaved]

    def test_inprocess_wait_and_result_timeout(self):
        """Satellite on the in-process handle: wait(timeout)/
        result(timeout) check the deadline at task boundaries and never
        cancel the job."""
        handle = FoundryService().submit(
            CampaignJob(cells=oracle_cells(2), n_workers=1)
        )
        assert handle.wait(timeout=0) is False  # deadline before any work
        assert handle.status() is JobStatus.PENDING
        with pytest.raises(TimeoutError):
            handle.result(timeout=0)
        result = handle.result()  # resumes driving after the timeout
        assert len(result.reports) == 2
        assert handle.wait(timeout=0) is True  # terminal: returns at once

    def test_inprocess_concurrent_streams_share_log(self):
        handle = FoundryService().submit(
            CampaignJob(cells=oracle_cells(3), n_workers=1)
        )
        pairs = list(zip(handle.stream(), handle.stream()))
        assert len(pairs) == 3
        assert all(a == b for a, b in pairs)

    def test_submit_identical_job_attaches(self, daemon_factory):
        daemon = daemon_factory("attach", n_workers=1)
        client = DaemonClient(socket=daemon.address)
        job = CampaignJob(cells=oracle_cells(2), n_workers=1)
        first = client.submit(job)
        second = client.submit(job)
        assert first.job_id == second.job_id
        assert first.result(timeout=600).reports == second.result().reports
        # Different tenant => different job id (tenants never share
        # handles, even for identical payloads).
        other = DaemonClient(socket=daemon.address, tenant="other").submit(job)
        assert other.job_id != first.job_id
        other.result(timeout=600)

    def test_draining_daemon_refuses_submissions(self, daemon_factory):
        daemon = daemon_factory("drain", n_workers=1)
        client = DaemonClient(socket=daemon.address)
        assert client.drain(timeout=30, shutdown=False) is True
        with pytest.raises(DaemonUnavailable, match="draining"):
            daemon.submit_job("acme", CampaignJob(cells=oracle_cells(1)))
        with pytest.raises((RuntimeError, ConnectionError)):
            client.submit(CampaignJob(cells=oracle_cells(1), n_workers=1))

    def test_unknown_job_and_bad_submission_errors(self, daemon_factory):
        daemon = daemon_factory("err", n_workers=1)
        client = DaemonClient(socket=daemon.address)
        with pytest.raises(KeyError, match="unknown job"):
            client.handle("nope").status()
        with pytest.raises(ValueError, match="n_workers"):
            client.submit(CampaignJob(cells=oracle_cells(1), n_workers=0))
        # The connection survives an errored request.
        assert client.ping()["ok"] is True


class TestDaemonRobustness:
    """Malformed wire input must cost the daemon one connection at
    most: an error frame or a closed socket, never a dead service."""

    def _raw(self, daemon):
        from repro.service.protocol import connect

        sock = connect(daemon.address, timeout=10)
        sock.settimeout(10)
        return sock

    def _reads_as_closed(self, sock) -> bool:
        try:
            return sock.recv(1 << 16) == b""
        except OSError:
            return True  # reset counts as closed too

    def test_oversized_length_prefix_closes_connection(self, daemon_factory):
        daemon = daemon_factory("rob1", n_workers=1)
        sock = self._raw(daemon)
        try:
            sock.sendall(b"\xff\xff\xff\xff")  # promises ~4 GiB
            assert self._reads_as_closed(sock)
        finally:
            sock.close()
        assert DaemonClient(socket=daemon.address).ping()["ok"] is True

    def test_truncated_frame_closes_connection(self, daemon_factory):
        daemon = daemon_factory("rob2", n_workers=1)
        sock = self._raw(daemon)
        try:
            sock.sendall(b"\x00\x00\x00\x64{\"op\":")  # 100 promised, 7 sent
            sock.shutdown(socket_module.SHUT_WR)
            assert self._reads_as_closed(sock)
        finally:
            sock.close()
        assert DaemonClient(socket=daemon.address).ping()["ok"] is True

    def test_non_json_body_closes_connection(self, daemon_factory):
        daemon = daemon_factory("rob3", n_workers=1)
        sock = self._raw(daemon)
        try:
            body = b"\x80\x04not json at all"
            sock.sendall(len(body).to_bytes(4, "big") + body)
            assert self._reads_as_closed(sock)
        finally:
            sock.close()
        assert DaemonClient(socket=daemon.address).ping()["ok"] is True

    def test_unknown_op_answers_error_frame_and_keeps_serving(
        self, daemon_factory
    ):
        daemon = daemon_factory("rob4", n_workers=1)
        sock = self._raw(daemon)
        try:
            send_frame(sock, {"op": "frobnicate"})
            reply = recv_frame(sock)
            assert reply["ok"] is False
            assert "unknown op" in reply["error"]
            # The same connection still serves well-formed requests.
            send_frame(sock, {"op": "ping"})
            assert recv_frame(sock)["ok"] is True
        finally:
            sock.close()
        assert DaemonClient(socket=daemon.address).ping()["ok"] is True

    def test_non_object_frame_closes_connection(self, daemon_factory):
        daemon = daemon_factory("rob5", n_workers=1)
        sock = self._raw(daemon)
        try:
            body = b"[1,2,3]"  # valid JSON, not a frame object
            sock.sendall(len(body).to_bytes(4, "big") + body)
            assert self._reads_as_closed(sock)
        finally:
            sock.close()
        assert DaemonClient(socket=daemon.address).ping()["ok"] is True


class TestStartupSweep:
    def test_startup_sweeps_crashed_holder_locks(self, tmp_path):
        """Satellite: a killed daemon's get_or_set lock debris in the
        shared store is swept at startup, before any fleet worker can
        wait on it."""
        root = tmp_path / "sweep"
        store = CalibrationStore(root / "calstore")
        for key in (("a", 1), ("b", 2), ("c", 3)):
            fd = os.open(store._lock(key), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            os.close(fd)
        daemon = FoundryDaemon(root, socket=short_socket(), n_workers=1)
        try:
            assert daemon.start() == 3
            assert list((root / "calstore").glob("cal-*.lock")) == []
        finally:
            daemon.stop()


# ---------------------------------------------------------------------------
# TCP transport
# ---------------------------------------------------------------------------


def free_tcp_port() -> int:
    """A currently-free localhost TCP port (bind-0 probe)."""
    sock = socket_module.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


class TestDaemonTCP:
    """The daemon over localhost TCP: the same protocol and the same
    guards as the Unix-socket path — malformed frames cost at most one
    connection, torn streams reconnect and resume."""

    @pytest.fixture
    def tcp_daemon(self, tmp_path):
        daemon = FoundryDaemon(
            tmp_path / "tcp", socket=f"127.0.0.1:{free_tcp_port()}",
            n_workers=1,
        )
        daemon.start()
        yield daemon
        daemon.stop()

    def test_campaign_over_tcp_matches_inprocess(self, tcp_daemon):
        cells = oracle_cells(2)
        reference = FoundryService().submit(
            CampaignJob(cells=cells, n_workers=1)
        ).result()
        client = DaemonClient(socket=tcp_daemon.address)
        result = client.submit(
            CampaignJob(cells=cells, n_workers=1)
        ).result(timeout=600)
        assert result.reports == reference.reports
        assert report_bytes(result.reports) == report_bytes(
            reference.reports
        )

    def test_malformed_frames_cost_one_connection(self, tcp_daemon):
        from repro.service.protocol import connect

        probes = (
            b"\xff\xff\xff\xff",            # oversized length prefix
            b"\x00\x00\x00\x64{\"op\":",    # 100 promised, 7 sent
            b"\x00\x00\x00\x07[1,2,3]",     # valid JSON, not a frame
        )
        for payload in probes:
            sock = connect(tcp_daemon.address, timeout=10)
            try:
                sock.settimeout(10)
                sock.sendall(payload)
                sock.shutdown(socket_module.SHUT_WR)
                try:
                    closed = sock.recv(1 << 16) == b""
                except OSError:
                    closed = True
                assert closed
            finally:
                sock.close()
            # The daemon survives every probe and keeps serving.
            assert DaemonClient(socket=tcp_daemon.address).ping()["ok"] is True

    def test_stream_reconnects_through_torn_frames_over_tcp(self, tcp_daemon):
        from repro import faults

        client = DaemonClient(socket=tcp_daemon.address)
        handle = client.submit(
            CampaignJob(cells=oracle_cells(3), n_workers=1)
        )
        handle.result(timeout=600)
        baseline = list(handle.stream())
        assert len(baseline) == 3
        standing = faults.active()  # restore any suite-wide chaos plan
        faults.install(
            faults.parse_spec("frame.truncate:every=5;frame.drop:at=2")
        )
        try:
            streamed = list(client.handle(handle.job_id).stream())
        finally:
            faults.install(standing)
        assert streamed == baseline


# ---------------------------------------------------------------------------
# Drain / restart
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestDrainRestart:
    def _serve(self, root, socket_path, env):
        return subprocess.Popen(
            [sys.executable, "-m", "repro.service", "serve",
             "--root", str(root), "--socket", socket_path, "--workers", "2"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            cwd=REPO_ROOT,
            env=env,
            text=True,
        )

    def _wait_listening(self, client, proc, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                raise AssertionError(
                    f"daemon exited early:\n{proc.stdout.read()}"
                )
            try:
                client.ping()
                return
            except OSError:
                time.sleep(0.1)
        raise AssertionError("daemon never started listening")

    def test_sigterm_drain_then_restart_resumes_bitidentically(
        self, tmp_path
    ):
        """The acceptance property: SIGTERM a daemon mid-campaign, then
        a daemon restarted on the same root finishes the job from its
        journal, bit-identical to an uninterrupted run.

        The first life runs under a ``task.hang`` fault plan so the
        campaign deterministically cannot finish before the SIGTERM
        lands: some fleet worker's 3rd task freezes (6 tasks over 2
        workers — one of them always reaches a 3rd), pinning the job
        mid-flight until the watchdog reclaims it.  Without the pin the
        test raced daemon-side completion against client-side event
        delivery, and a warm-kernel run could finish all six cells
        before the signal was sent."""
        cells = oracle_cells(6, budget=24)
        uninterrupted = FoundryService().submit(
            CampaignJob(cells=cells, n_workers=1)
        ).result()
        root = tmp_path / "droot"
        socket_path = short_socket()
        env = dict(os.environ)
        inherited = env.get("PYTHONPATH")
        env["PYTHONPATH"] = "src" + (os.pathsep + inherited if inherited else "")
        job = CampaignJob(cells=cells, n_workers=1)
        client = DaemonClient(socket=socket_path)

        first_env = dict(env)
        first_env["REPRO_FAULTS"] = "task.hang:at=3"
        first_env["REPRO_TASK_TIMEOUT"] = "8"
        proc = self._serve(root, socket_path, first_env)
        try:
            self._wait_listening(client, proc)
            handle = client.submit(job)
            delivered = 0
            with pytest.raises((DaemonUnavailableError, ProtocolError,
                                OSError)):
                for event in handle.stream():
                    delivered += 1
                    if delivered == 2:
                        # Drain: stop admission, journal in-flight
                        # work, leave the job resumable.
                        proc.send_signal(signal.SIGTERM)
            assert delivered >= 2
        finally:
            proc.wait(timeout=60)
            proc.stdout.close()

        # Restart on the same root: recovery re-admits the journaled
        # job; attaching to the same submission yields replay events
        # for every cell the first life finished, then the rest live.
        proc = self._serve(root, socket_path, env)
        try:
            self._wait_listening(client, proc)
            handle = client.submit(job)
            events = list(handle.stream())
            assert sum(1 for e in events if e.kind == "replay") >= 2
            result = handle.result()
            assert result.reports == uninterrupted.reports
            assert report_bytes(result.reports) == report_bytes(
                uninterrupted.reports
            )
            # Graceful drain shuts the daemon down cleanly.
            assert client.drain(timeout=60) is True
        finally:
            proc.wait(timeout=60)
            proc.stdout.close()
        assert proc.returncode == 0
